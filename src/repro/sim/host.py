"""Endpoint hosts: a window/pacing-controlled sender and an ACKing receiver.

The sender implements a small reliable transport that is deliberately
simpler than TCP but preserves everything the paper's CCAs need:

* per-packet sequence numbers and per-packet (or aggregated) ACKs,
* RTT samples from echoed send timestamps,
* delivery-rate samples in the style of Linux TCP's rate sampler (BBR),
* gap-based loss detection (the simulated network never reorders, so a
  sequence gap of ``reorder_threshold`` packets means a drop),
* a retransmission-timeout backstop,
* retransmission of lost packets (lost packets are resent before new
  data so that goodput equals acknowledged unique bytes).

The receiver supports immediate ACKs, delayed ACKs (ACK every ``every``-th
packet or after ``timeout``), which is the mechanism behind the paper's
Figure 7 experiment.

Hot-path design notes (see docs/PERFORMANCE.md):

* The RTO backstop is deadline-deferred: instead of cancelling and
  rescheduling a timer on every ACK (which used to leave hundreds of
  lazily-deleted events in the heap at any moment), the sender tracks
  ``_rto_deadline`` and lets an already-scheduled timer wake up, notice
  the deadline moved, and re-arm itself. Firing times are identical.
* The pacing timer is kept when re-armed for the same release time —
  the common case when several ACKs arrive between sends.
* Senders/receivers built with a shared :class:`~repro.sim.packet.
  PacketPool` recycle packet and ACK objects instead of allocating one
  per event (``build_dumbbell`` wires one pool per scenario; hand-built
  hosts default to plain allocation).
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from .engine import Event, Simulator
from .packet import Ack, AckInfo, Packet, PacketPool

ACK_SIZE = 40


class Sender:
    """A bulk-transfer sender driven by a congestion control algorithm.

    Args:
        sim: simulation engine.
        flow_id: unique flow identifier.
        cca: the congestion controller (see :class:`repro.ccas.base.CCA`).
        mss: packet payload size in bytes.
        start_time: when the flow starts sending.
        reorder_threshold: sequence gap (in packets) treated as loss.
        min_rto / rto_multiplier: retransmission-timeout backstop.
        pool: optional shared packet/ACK free list; ``None`` (the
            default) allocates plain objects.
    """

    def __init__(self, sim: Simulator, flow_id: int, cca,
                 mss: int = 1500, start_time: float = 0.0,
                 reorder_threshold: int = 3,
                 min_rto: float = 0.2, rto_multiplier: float = 3.0,
                 burst_size: int = 1,
                 pool: Optional[PacketPool] = None) -> None:
        if mss <= 0:
            raise ConfigurationError(f"mss must be > 0, got {mss}")
        if burst_size < 1:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {burst_size}")
        self.sim = sim
        self.flow_id = flow_id
        self.cca = cca
        self.mss = mss
        self.start_time = start_time
        self.reorder_threshold = reorder_threshold
        self.min_rto = min_rto
        self.rto_multiplier = rto_multiplier
        # GSO/offload-style batching (Section 5.4 discussion): hold
        # window permission until a full burst can be released at once.
        self.burst_size = burst_size
        self.pool = pool

        self.path: Optional[object] = None  # first element of forward path

        self.next_seq = 0
        self.highest_acked = -1
        # seq -> (size, last_sent_time)
        self._unacked: Dict[int, Tuple[int, float]] = {}
        # Min-heap of unacked seqs (lazy deletion) for O(log n) gap checks.
        self._unacked_heap: List[int] = []
        self._lost: List[int] = []      # seqs awaiting retransmission
        self._lost_set: Set[int] = set()
        self.inflight_bytes = 0

        self.delivered_bytes = 0.0      # cumulatively ACKed unique bytes
        self.delivered_time = 0.0
        self.sent_packets = 0
        self.retransmits = 0
        self.losses_detected = 0
        self.timeouts = 0

        self.min_rtt = math.inf
        self.srtt: Optional[float] = None
        self.latest_rtt: Optional[float] = None

        self._pacing_timer: Optional[Event] = None
        self._rto_timer: Optional[Event] = None
        self._rto_deadline = 0.0
        self._next_send_time = 0.0
        self._started = False

        self.on_ack_hooks: List[Callable[["Sender", AckInfo], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_path(self, path_entry: object) -> None:
        """Set the first forward-path element packets are handed to."""
        self.path = path_entry

    def start(self) -> None:
        """Schedule the flow start (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_at(self.start_time, self._begin)

    def _begin(self) -> None:
        self.cca.attach(self)
        self._next_send_time = self.sim.now
        self._try_send()
        self._arm_rto()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _current_rto(self) -> float:
        if self.srtt is None:
            return max(self.min_rto, 1.0)
        return max(self.min_rto, self.rto_multiplier * self.srtt)

    def _arm_rto(self) -> None:
        """Move the RTO deadline; reuse a pending wakeup when possible.

        A timer already set to wake at or before the new deadline is
        left alone — :meth:`_on_rto_timer` re-arms to the deferred
        deadline when it fires early. This replaces the old
        cancel-and-reschedule per ACK, which filled the event heap with
        lazily-deleted timers (one per ACK for the whole RTO span).
        """
        srtt = self.srtt
        if srtt is None:
            rto = max(self.min_rto, 1.0)
        else:
            rto = self.rto_multiplier * srtt
            if rto < self.min_rto:
                rto = self.min_rto
        deadline = self.sim.now + rto
        self._rto_deadline = deadline
        timer = self._rto_timer
        if timer is not None:
            if not timer.cancelled and timer.time <= deadline:
                return
            timer.cancel()
        self._rto_timer = self.sim.schedule_at(deadline,
                                               self._on_rto_timer)

    def _on_rto_timer(self) -> None:
        self._rto_timer = None
        deadline = self._rto_deadline
        if self.sim.now < deadline - 1e-12:
            # ACKs moved the deadline since this wakeup was scheduled.
            self._rto_timer = self.sim.schedule_at(deadline,
                                                   self._on_rto_timer)
            return
        self._on_rto()

    def _window_allows(self) -> bool:
        return self.inflight_bytes + self.mss <= self.cca.cwnd_bytes

    def _burst_gate_open(self) -> bool:
        """With burst_size > 1, wait until a full burst fits the window
        (an idle connection may always send what it has)."""
        if self.burst_size <= 1:
            return True
        if self.inflight_bytes == 0:
            return True
        headroom = self.cca.cwnd_bytes - self.inflight_bytes
        return headroom >= self.burst_size * self.mss

    def _try_send(self) -> None:
        """Send as many packets as the window and pacer allow."""
        if self.path is None:
            raise ConfigurationError("sender has no forward path attached")
        if not self._burst_gate_open():
            return
        cca = self.cca
        sim = self.sim
        mss = self.mss
        # cwnd/pacing are hoisted out of the loop: on_send must not move
        # them (see CCA.on_send), and nothing else runs between sends.
        cwnd = cca.cwnd_bytes
        rate = cca.pacing_rate
        while self.inflight_bytes + mss <= cwnd:
            if rate is not None:
                if rate <= 0:
                    return  # paced at zero: wait for the CCA to raise it
                if sim.now + 1e-15 < self._next_send_time:
                    self._arm_pacing_timer()
                    return
            self._send_one()
            if rate is not None:
                base = self._next_send_time
                if base < sim.now:
                    base = sim.now
                self._next_send_time = base + mss / rate

    def _arm_pacing_timer(self) -> None:
        """Arm the pacing wakeup at ``_next_send_time``.

        Always cancel-and-reschedule: keeping a live timer aimed at the
        same release time would preserve its original (earlier) heap
        sequence number and flip the execution order of exact
        same-timestamp ties, perturbing golden traces.
        """
        if self._pacing_timer is not None:
            self._pacing_timer.cancel()
        self._pacing_timer = self.sim.schedule_at(self._next_send_time,
                                                  self._on_pacing_timer)

    def _on_pacing_timer(self) -> None:
        self._pacing_timer = None
        self._try_send()

    def kick(self) -> None:
        """Re-evaluate sending; CCAs call this after timer-driven changes."""
        if self._started and self.sim.now >= self.start_time:
            self._try_send()

    def _send_one(self) -> None:
        if self._lost:
            seq = self._lost.pop(0)
            self._lost_set.discard(seq)
            is_retransmit = True
            self.retransmits += 1
        else:
            seq = self.next_seq
            self.next_seq += 1
            is_retransmit = False
        now = self.sim.now
        mss = self.mss
        pool = self.pool
        if pool is not None:
            packet = pool.acquire(self.flow_id, seq, mss, now,
                                  self.delivered_bytes,
                                  self.delivered_time, is_retransmit)
        else:
            packet = Packet(self.flow_id, seq, mss, now,
                            delivered_at_send=self.delivered_bytes,
                            delivered_time_at_send=self.delivered_time,
                            is_retransmit=is_retransmit)
        self._unacked[seq] = (mss, now)
        heapq.heappush(self._unacked_heap, seq)
        self.inflight_bytes += mss
        self.sent_packets += 1
        self.cca.on_send(now, seq, mss, is_retransmit)
        self.path.receive(packet, now)

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------

    def receive_ack(self, ack: Ack, now: float) -> None:
        rtt = now - ack.rtt_sample_sent_time
        self.latest_rtt = rtt
        if rtt < self.min_rtt:
            self.min_rtt = rtt
        srtt = self.srtt
        self.srtt = rtt if srtt is None else 0.875 * srtt + 0.125 * rtt

        unacked = self._unacked
        highest = self.highest_acked
        newly_acked = 0
        acked_seqs = ack.acked_seqs
        for seq in acked_seqs:
            entry = unacked.pop(seq, None)
            if entry is not None:
                newly_acked += entry[0]
            elif seq in self._lost_set:
                # ACK raced a queued retransmission: cancel it.
                self._lost_set.discard(seq)
                self._lost.remove(seq)
            if seq > highest:
                highest = seq
        self.highest_acked = highest
        self.inflight_bytes -= newly_acked

        delivery_rate = None
        interval = now - ack.delivered_time_at_send
        if interval > 1e-12 and ack.delivered_time_at_send > 0:
            delivery_rate = ((self.delivered_bytes + newly_acked
                              - ack.delivered_at_send) / interval)
        self.delivered_bytes += newly_acked
        self.delivered_time = now

        self._detect_losses(now, ack.rtt_sample_sent_time)

        info = AckInfo(rtt=rtt, acked_bytes=newly_acked,
                       delivery_rate=delivery_rate,
                       inflight_bytes=self.inflight_bytes,
                       min_rtt=self.min_rtt, now=now,
                       delivered_bytes=self.delivered_bytes,
                       delivered_at_send=ack.delivered_at_send,
                       acked_seqs=acked_seqs,
                       ecn_marked=ack.ecn_marked_count)
        pool = self.pool
        if pool is not None:
            pool.release_ack(ack)
        self.cca.on_ack(info)
        for hook in self.on_ack_hooks:
            hook(self, info)
        self._arm_rto()
        self._try_send()

    #: Entry point for the reverse path (duck-typed like a sink); an
    #: alias so ACK delivery costs one frame, not two.
    receive = receive_ack

    def _detect_losses(self, now: float, ack_sent_time: float) -> None:
        """Declare unacked packets below the dup-ACK horizon lost.

        A packet is lost only if it is (a) more than ``reorder_threshold``
        sequence numbers below the highest ACK and (b) was sent no later
        than the packet whose ACK we are processing — otherwise a fresh
        retransmission would be re-declared lost before it could arrive.
        """
        heap = self._unacked_heap
        horizon = self.highest_acked - self.reorder_threshold
        if horizon < 0 or not heap or heap[0] > horizon:
            return
        unacked = self._unacked
        deferred = []
        while heap and heap[0] <= horizon:
            seq = heapq.heappop(heap)
            entry = unacked.get(seq)
            if entry is None:
                continue  # stale heap entry (already ACKed)
            size, sent = entry
            if sent > ack_sent_time:
                # A fresh retransmission: not evidence of loss yet.
                deferred.append(seq)
                continue
            del unacked[seq]
            self.inflight_bytes -= size
            self._lost.append(seq)
            self._lost_set.add(seq)
            self.losses_detected += 1
            self.cca.on_loss(now, seq, size)
        for seq in deferred:
            heapq.heappush(heap, seq)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if not self._unacked:
            self._arm_rto()
            return
        self.timeouts += 1
        for seq in sorted(self._unacked):
            size, _ = self._unacked.pop(seq)
            self.inflight_bytes -= size
            if seq not in self._lost_set:
                self._lost.append(seq)
                self._lost_set.add(seq)
        self.cca.on_timeout(self.sim.now)
        self._arm_rto()
        self._try_send()

    # ------------------------------------------------------------------
    # Invariant sentinel hook (see repro.sim.invariants)
    # ------------------------------------------------------------------

    def invariant_errors(self):
        """Yield (kind, site, message) for violated sender invariants."""
        errors = []
        unacked_bytes = sum(entry[0] for entry in self._unacked.values())
        if unacked_bytes != self.inflight_bytes:
            errors.append((
                "conservation", "inflight",
                f"inflight_bytes={self.inflight_bytes} but unacked "
                f"packets hold {unacked_bytes} bytes"))
        if self.inflight_bytes < 0:
            errors.append((
                "conservation", "inflight_negative",
                f"inflight_bytes is negative: {self.inflight_bytes}"))
        if self.delivered_bytes > self.next_seq * self.mss + 1e-6:
            errors.append((
                "conservation", "delivered",
                f"delivered {self.delivered_bytes} unique bytes but only "
                f"{self.next_seq * self.mss} were ever created"))
        for name, value in (("min_rtt", self.min_rtt),
                            ("srtt", self.srtt),
                            ("latest_rtt", self.latest_rtt)):
            if value is None:
                continue
            if value != value or value <= 0.0 or (
                    name != "min_rtt" and math.isinf(value)):
                errors.append((
                    "sanity", name,
                    f"{name} must be positive and finite, got {value!r}"))
        return errors


class Receiver:
    """Receives data packets and emits (possibly delayed) ACKs.

    Args:
        sim: simulation engine.
        flow_id: flow this receiver belongs to.
        ack_every: emit one ACK per ``ack_every`` received packets.
        ack_timeout: flush pending ACKs after this long (None = only flush
            by count). Standard delayed-ACK behavior uses e.g. 40 ms.
        pool: optional shared packet/ACK free list; consumed data
            packets are recycled into it and ACKs drawn from it.
    """

    def __init__(self, sim: Simulator, flow_id: int,
                 ack_every: int = 1,
                 ack_timeout: Optional[float] = None,
                 pool: Optional[PacketPool] = None) -> None:
        if ack_every < 1:
            raise ConfigurationError(f"ack_every must be >= 1, got {ack_every}")
        self.sim = sim
        self.flow_id = flow_id
        self.ack_every = ack_every
        self.ack_timeout = ack_timeout
        self.pool = pool
        self.ack_path: Optional[object] = None

        self.received_packets = 0
        self.received_bytes = 0.0       # unique payload bytes
        self._seen: Set[int] = set()
        self._pending: List[Packet] = []
        self._flush_timer: Optional[Event] = None

    def attach_ack_path(self, ack_path_entry: object) -> None:
        """Set the first reverse-path element ACKs are handed to."""
        self.ack_path = ack_path_entry

    def receive(self, packet: Packet, now: float) -> None:
        self.received_packets += 1
        seq = packet.seq
        seen = self._seen
        if seq not in seen:
            seen.add(seq)
            self.received_bytes += packet.size
        if self.ack_every == 1 and not self._pending:
            # Immediate-ACK fast path: one packet, one ACK, no pending
            # list bookkeeping. Field-for-field identical to _flush on a
            # single-packet batch.
            ack_path = self.ack_path
            if ack_path is None:
                return
            pool = self.pool
            if pool is not None:
                ack = pool.acquire_ack(
                    self.flow_id, (seq,), packet.size, seq,
                    packet.sent_time, packet.delivered_at_send,
                    packet.delivered_time_at_send, now,
                    1 if packet.ecn_marked else 0)
                pool.release(packet)
            else:
                ack = Ack(self.flow_id, (seq,), packet.size, seq,
                          packet.sent_time, packet.delivered_at_send,
                          packet.delivered_time_at_send, now,
                          1 if packet.ecn_marked else 0)
            ack_path.receive(ack, now)
            return
        self._pending.append(packet)
        if len(self._pending) >= self.ack_every:
            self._flush(now)
        elif self.ack_timeout is not None and self._flush_timer is None:
            self._flush_timer = self.sim.schedule(self.ack_timeout,
                                                  self._on_flush_timer)

    def _on_flush_timer(self) -> None:
        self._flush_timer = None
        if self._pending:
            self._flush(self.sim.now)

    def _flush(self, now: float) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        pending = self._pending
        if not pending or self.ack_path is None:
            self._pending = []
            return
        newest = pending[-1]
        acked_seqs = tuple(p.seq for p in pending)
        acked_bytes = sum(p.size for p in pending)
        ecn_count = sum(1 for p in pending if p.ecn_marked)
        pool = self.pool
        if pool is not None:
            ack = pool.acquire_ack(
                self.flow_id, acked_seqs, acked_bytes, newest.seq,
                newest.sent_time, newest.delivered_at_send,
                newest.delivered_time_at_send, now, ecn_count)
            for p in pending:
                pool.release(p)
        else:
            ack = Ack(flow_id=self.flow_id,
                      acked_seqs=acked_seqs,
                      acked_bytes=acked_bytes,
                      rtt_sample_seq=newest.seq,
                      rtt_sample_sent_time=newest.sent_time,
                      delivered_at_send=newest.delivered_at_send,
                      delivered_time_at_send=newest.delivered_time_at_send,
                      recv_time=now,
                      ecn_marked_count=ecn_count)
        self._pending = []
        self.ack_path.receive(ack, now)

    # ------------------------------------------------------------------
    # Invariant sentinel hook (see repro.sim.invariants)
    # ------------------------------------------------------------------

    def invariant_errors(self):
        """Yield (kind, site, message) for violated receiver invariants."""
        errors = []
        if self.received_packets < len(self._seen):
            errors.append((
                "conservation", "received_count",
                f"received_packets={self.received_packets} below unique "
                f"sequence count {len(self._seen)}"))
        if self.received_bytes < 0:
            errors.append((
                "conservation", "received_bytes",
                f"received_bytes is negative: {self.received_bytes}"))
        return errors
