"""Endpoint hosts: a window/pacing-controlled sender and an ACKing receiver.

The sender implements a small reliable transport that is deliberately
simpler than TCP but preserves everything the paper's CCAs need:

* per-packet sequence numbers and per-packet (or aggregated) ACKs,
* RTT samples from echoed send timestamps,
* delivery-rate samples in the style of Linux TCP's rate sampler (BBR),
* gap-based loss detection (the simulated network never reorders, so a
  sequence gap of ``reorder_threshold`` packets means a drop),
* a retransmission-timeout backstop,
* retransmission of lost packets (lost packets are resent before new
  data so that goodput equals acknowledged unique bytes).

The receiver supports immediate ACKs, delayed ACKs (ACK every ``every``-th
packet or after ``timeout``), which is the mechanism behind the paper's
Figure 7 experiment.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from .engine import Event, Simulator
from .packet import Ack, AckInfo, Packet

ACK_SIZE = 40


class Sender:
    """A bulk-transfer sender driven by a congestion control algorithm.

    Args:
        sim: simulation engine.
        flow_id: unique flow identifier.
        cca: the congestion controller (see :class:`repro.ccas.base.CCA`).
        mss: packet payload size in bytes.
        start_time: when the flow starts sending.
        reorder_threshold: sequence gap (in packets) treated as loss.
        min_rto / rto_multiplier: retransmission-timeout backstop.
    """

    def __init__(self, sim: Simulator, flow_id: int, cca,
                 mss: int = 1500, start_time: float = 0.0,
                 reorder_threshold: int = 3,
                 min_rto: float = 0.2, rto_multiplier: float = 3.0,
                 burst_size: int = 1) -> None:
        if mss <= 0:
            raise ConfigurationError(f"mss must be > 0, got {mss}")
        if burst_size < 1:
            raise ConfigurationError(
                f"burst_size must be >= 1, got {burst_size}")
        self.sim = sim
        self.flow_id = flow_id
        self.cca = cca
        self.mss = mss
        self.start_time = start_time
        self.reorder_threshold = reorder_threshold
        self.min_rto = min_rto
        self.rto_multiplier = rto_multiplier
        # GSO/offload-style batching (Section 5.4 discussion): hold
        # window permission until a full burst can be released at once.
        self.burst_size = burst_size

        self.path: Optional[object] = None  # first element of forward path

        self.next_seq = 0
        self.highest_acked = -1
        # seq -> (size, last_sent_time)
        self._unacked: Dict[int, Tuple[int, float]] = {}
        # Min-heap of unacked seqs (lazy deletion) for O(log n) gap checks.
        self._unacked_heap: List[int] = []
        self._lost: List[int] = []      # seqs awaiting retransmission
        self._lost_set: Set[int] = set()
        self.inflight_bytes = 0

        self.delivered_bytes = 0.0      # cumulatively ACKed unique bytes
        self.delivered_time = 0.0
        self.sent_packets = 0
        self.retransmits = 0
        self.losses_detected = 0
        self.timeouts = 0

        self.min_rtt = math.inf
        self.srtt: Optional[float] = None
        self.latest_rtt: Optional[float] = None

        self._pacing_timer: Optional[Event] = None
        self._rto_timer: Optional[Event] = None
        self._next_send_time = 0.0
        self._started = False

        self.on_ack_hooks: List[Callable[["Sender", AckInfo], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_path(self, path_entry: object) -> None:
        """Set the first forward-path element packets are handed to."""
        self.path = path_entry

    def start(self) -> None:
        """Schedule the flow start (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_at(self.start_time, self._begin)

    def _begin(self) -> None:
        self.cca.attach(self)
        self._next_send_time = self.sim.now
        self._try_send()
        self._arm_rto()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _current_rto(self) -> float:
        if self.srtt is None:
            return max(self.min_rto, 1.0)
        return max(self.min_rto, self.rto_multiplier * self.srtt)

    def _arm_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
        self._rto_timer = self.sim.schedule(self._current_rto(),
                                            self._on_rto)

    def _window_allows(self) -> bool:
        return self.inflight_bytes + self.mss <= self.cca.cwnd_bytes

    def _burst_gate_open(self) -> bool:
        """With burst_size > 1, wait until a full burst fits the window
        (an idle connection may always send what it has)."""
        if self.burst_size <= 1:
            return True
        if self.inflight_bytes == 0:
            return True
        headroom = self.cca.cwnd_bytes - self.inflight_bytes
        return headroom >= self.burst_size * self.mss

    def _try_send(self) -> None:
        """Send as many packets as the window and pacer allow."""
        if self.path is None:
            raise ConfigurationError("sender has no forward path attached")
        if not self._burst_gate_open():
            return
        while self._window_allows():
            rate = self.cca.pacing_rate
            if rate is not None:
                if rate <= 0:
                    return  # paced at zero: wait for the CCA to raise it
                if self.sim.now + 1e-15 < self._next_send_time:
                    self._arm_pacing_timer()
                    return
            self._send_one()
            if rate is not None:
                base = max(self._next_send_time, self.sim.now)
                self._next_send_time = base + self.mss / rate

    def _arm_pacing_timer(self) -> None:
        if self._pacing_timer is not None:
            self._pacing_timer.cancel()
        self._pacing_timer = self.sim.schedule_at(self._next_send_time,
                                                  self._on_pacing_timer)

    def _on_pacing_timer(self) -> None:
        self._pacing_timer = None
        self._try_send()

    def kick(self) -> None:
        """Re-evaluate sending; CCAs call this after timer-driven changes."""
        if self._started and self.sim.now >= self.start_time:
            self._try_send()

    def _send_one(self) -> None:
        if self._lost:
            seq = self._lost.pop(0)
            self._lost_set.discard(seq)
            is_retransmit = True
            self.retransmits += 1
        else:
            seq = self.next_seq
            self.next_seq += 1
            is_retransmit = False
        packet = Packet(self.flow_id, seq, self.mss, self.sim.now,
                        delivered_at_send=self.delivered_bytes,
                        delivered_time_at_send=self.delivered_time,
                        is_retransmit=is_retransmit)
        self._unacked[seq] = (self.mss, self.sim.now)
        heapq.heappush(self._unacked_heap, seq)
        self.inflight_bytes += self.mss
        self.sent_packets += 1
        self.cca.on_send(self.sim.now, seq, self.mss, is_retransmit)
        self.path.receive(packet, self.sim.now)

    # ------------------------------------------------------------------
    # Receiving ACKs
    # ------------------------------------------------------------------

    def receive(self, ack: Ack, now: float) -> None:
        """Entry point for the reverse path (duck-typed like a sink)."""
        self.receive_ack(ack, now)

    def receive_ack(self, ack: Ack, now: float) -> None:
        rtt = now - ack.rtt_sample_sent_time
        self.latest_rtt = rtt
        if rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
        else:
            self.srtt = 0.875 * self.srtt + 0.125 * rtt

        newly_acked = 0
        for seq in ack.acked_seqs:
            entry = self._unacked.pop(seq, None)
            if entry is not None:
                newly_acked += entry[0]
                self.inflight_bytes -= entry[0]
            elif seq in self._lost_set:
                # ACK raced a queued retransmission: cancel it.
                self._lost_set.discard(seq)
                self._lost.remove(seq)
            if seq > self.highest_acked:
                self.highest_acked = seq

        delivery_rate = None
        interval = now - ack.delivered_time_at_send
        if interval > 1e-12 and ack.delivered_time_at_send > 0:
            delivery_rate = ((self.delivered_bytes + newly_acked
                              - ack.delivered_at_send) / interval)
        self.delivered_bytes += newly_acked
        self.delivered_time = now

        self._detect_losses(now, ack.rtt_sample_sent_time)

        info = AckInfo(rtt=rtt, acked_bytes=newly_acked,
                       delivery_rate=delivery_rate,
                       inflight_bytes=self.inflight_bytes,
                       min_rtt=self.min_rtt, now=now,
                       delivered_bytes=self.delivered_bytes,
                       delivered_at_send=ack.delivered_at_send,
                       acked_seqs=ack.acked_seqs,
                       ecn_marked=ack.ecn_marked_count)
        self.cca.on_ack(info)
        for hook in self.on_ack_hooks:
            hook(self, info)
        self._arm_rto()
        self._try_send()

    def _detect_losses(self, now: float, ack_sent_time: float) -> None:
        """Declare unacked packets below the dup-ACK horizon lost.

        A packet is lost only if it is (a) more than ``reorder_threshold``
        sequence numbers below the highest ACK and (b) was sent no later
        than the packet whose ACK we are processing — otherwise a fresh
        retransmission would be re-declared lost before it could arrive.
        """
        horizon = self.highest_acked - self.reorder_threshold
        if horizon < 0:
            return
        heap = self._unacked_heap
        deferred = []
        while heap and heap[0] <= horizon:
            seq = heapq.heappop(heap)
            entry = self._unacked.get(seq)
            if entry is None:
                continue  # stale heap entry (already ACKed)
            size, sent = entry
            if sent > ack_sent_time:
                # A fresh retransmission: not evidence of loss yet.
                deferred.append(seq)
                continue
            del self._unacked[seq]
            self.inflight_bytes -= size
            self._lost.append(seq)
            self._lost_set.add(seq)
            self.losses_detected += 1
            self.cca.on_loss(now, seq, size)
        for seq in deferred:
            heapq.heappush(heap, seq)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if not self._unacked:
            self._arm_rto()
            return
        self.timeouts += 1
        for seq in sorted(self._unacked):
            size, _ = self._unacked.pop(seq)
            self.inflight_bytes -= size
            if seq not in self._lost_set:
                self._lost.append(seq)
                self._lost_set.add(seq)
        self.cca.on_timeout(self.sim.now)
        self._arm_rto()
        self._try_send()


class Receiver:
    """Receives data packets and emits (possibly delayed) ACKs.

    Args:
        sim: simulation engine.
        flow_id: flow this receiver belongs to.
        ack_every: emit one ACK per ``ack_every`` received packets.
        ack_timeout: flush pending ACKs after this long (None = only flush
            by count). Standard delayed-ACK behavior uses e.g. 40 ms.
    """

    def __init__(self, sim: Simulator, flow_id: int,
                 ack_every: int = 1,
                 ack_timeout: Optional[float] = None) -> None:
        if ack_every < 1:
            raise ConfigurationError(f"ack_every must be >= 1, got {ack_every}")
        self.sim = sim
        self.flow_id = flow_id
        self.ack_every = ack_every
        self.ack_timeout = ack_timeout
        self.ack_path: Optional[object] = None

        self.received_packets = 0
        self.received_bytes = 0.0       # unique payload bytes
        self._seen: Set[int] = set()
        self._pending: List[Packet] = []
        self._flush_timer: Optional[Event] = None

    def attach_ack_path(self, ack_path_entry: object) -> None:
        """Set the first reverse-path element ACKs are handed to."""
        self.ack_path = ack_path_entry

    def receive(self, packet: Packet, now: float) -> None:
        self.received_packets += 1
        if packet.seq not in self._seen:
            self._seen.add(packet.seq)
            self.received_bytes += packet.size
        self._pending.append(packet)
        if len(self._pending) >= self.ack_every:
            self._flush(now)
        elif self.ack_timeout is not None and self._flush_timer is None:
            self._flush_timer = self.sim.schedule(self.ack_timeout,
                                                  self._on_flush_timer)

    def _on_flush_timer(self) -> None:
        self._flush_timer = None
        if self._pending:
            self._flush(self.sim.now)

    def _flush(self, now: float) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not self._pending or self.ack_path is None:
            self._pending = []
            return
        newest = self._pending[-1]
        ack = Ack(flow_id=self.flow_id,
                  acked_seqs=tuple(p.seq for p in self._pending),
                  acked_bytes=sum(p.size for p in self._pending),
                  rtt_sample_seq=newest.seq,
                  rtt_sample_sent_time=newest.sent_time,
                  delivered_at_send=newest.delivered_at_send,
                  delivered_time_at_send=newest.delivered_time_at_send,
                  recv_time=now,
                  ecn_marked_count=sum(
                      1 for p in self._pending if p.ecn_marked))
        self._pending = []
        self.ack_path.receive(ack, now)
