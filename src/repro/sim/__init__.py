"""Packet-level discrete-event network simulator (Mahimahi substitute).

Implements the paper's Section 3 network model: a single shared FIFO
bottleneck drained at a constant rate, per-flow propagation delay, and
per-flow bounded non-congestive jitter elements that never reorder.
"""

from .engine import Event, Simulator
from .faults import (BlackoutElement, CorruptionElement, DuplicateElement,
                     FaultSchedule, FaultWindow, GilbertElliottLossElement,
                     LinkFlapElement, ReorderElement)
from .host import Receiver, Sender
from .invariants import (InvariantSentinel, InvariantWarning, override_mode,
                         resolve_mode)
from .network import (FlowConfig, LinkConfig, Scenario, TopologyLink,
                      build_dumbbell, build_topology)
from .packet import Ack, AckInfo, Packet
from .queue import BottleneckQueue
from .runner import (FlowStats, RunResult, run_scenario,
                     run_scenario_full, run_topology_full)

__all__ = [
    "Ack", "AckInfo", "BlackoutElement", "BottleneckQueue",
    "CorruptionElement", "DuplicateElement", "Event", "FaultSchedule",
    "FaultWindow", "FlowConfig", "FlowStats", "GilbertElliottLossElement",
    "InvariantSentinel", "InvariantWarning", "LinkConfig", "LinkFlapElement",
    "Packet", "Receiver", "ReorderElement", "RunResult", "Scenario",
    "Sender", "Simulator", "TopologyLink", "build_dumbbell",
    "build_topology", "override_mode", "resolve_mode", "run_scenario",
    "run_scenario_full", "run_topology_full",
]
