"""Time-series recording for flows and queues.

Recorders attach to senders (via the ``on_ack_hooks`` list) and to the
simulator clock (periodic sampling) and accumulate compact
``array('d')`` buffers (8 bytes per sample instead of a boxed float
per entry), so downstream analysis can turn them into numpy arrays
zero-copy when needed. The buffers behave like read-only sequences of
floats; ``pacing_values`` stores NaN where the CCA reports no pacing
rate (the old ``None`` entries).
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_left, bisect_right
from typing import Tuple

from .engine import Simulator
from .host import Receiver, Sender
from .packet import AckInfo
from .queue import BottleneckQueue

_NAN = float("nan")


class FlowRecorder:
    """Records per-ACK RTT samples and periodic cwnd/rate/delivery samples.

    Attributes populated during the run:
        rtt_times / rtt_values: one entry per ACK processed.
        sample_times / cwnd_values / pacing_values / delivered_values /
            received_values: one entry per ``sample_interval``
            (``received_values`` stays empty without a receiver;
            ``pacing_values`` holds NaN where the CCA is unpaced).
    """

    def __init__(self, sim: Simulator, sender: Sender,
                 sample_interval: float = 0.05,
                 receiver: Receiver = None) -> None:
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.sample_interval = sample_interval

        self.rtt_times = array("d")
        self.rtt_values = array("d")
        self.sample_times = array("d")
        self.cwnd_values = array("d")
        self.pacing_values = array("d")
        self.delivered_values = array("d")
        self.received_values = array("d")

        sender.on_ack_hooks.append(self._on_ack)
        sim.schedule(sample_interval, self._sample)

    def _on_ack(self, sender: Sender, info: AckInfo) -> None:
        self.rtt_times.append(info.now)
        self.rtt_values.append(info.rtt)

    def _sample(self) -> None:
        sender = self.sender
        cca = sender.cca
        self.sample_times.append(self.sim.now)
        self.cwnd_values.append(cca.cwnd_bytes)
        pacing = cca.pacing_rate
        self.pacing_values.append(_NAN if pacing is None else pacing)
        self.delivered_values.append(sender.delivered_bytes)
        if self.receiver is not None:
            self.received_values.append(self.receiver.received_bytes)
        self.sim.schedule(self.sample_interval, self._sample)

    def throughput_between(self, t0: float, t1: float) -> float:
        """Average delivered rate (bytes/s) over the window [t0, t1].

        Uses the periodic delivered-bytes samples; t0/t1 snap to the
        nearest recorded samples.
        """
        return self._rate_between(self.delivered_values, t0, t1)

    def goodput_between(self, t0: float, t1: float) -> float:
        """Average receiver unique-bytes rate over [t0, t1].

        Requires the recorder to have been built with a receiver;
        returns 0.0 otherwise.
        """
        return self._rate_between(self.received_values, t0, t1)

    def _rate_between(self, values, t0: float, t1: float) -> float:
        if not self.sample_times or not values or t1 <= t0:
            return 0.0
        d0 = self._value_at(values, t0)
        d1 = self._value_at(values, t1)
        return max(0.0, (d1 - d0) / (t1 - t0))

    def _value_at(self, values, t: float) -> float:
        # Binary search over sorted sample times.
        times = self.sample_times
        lo, hi = 0, min(len(times), len(values))
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return 0.0
        return values[lo - 1]

    def rtt_window_stats(self, t0: float, t1: float
                         ) -> Tuple[float, float, float]:
        """(mean, min, max) of RTT samples with ``t0 <= time <= t1``.

        Returns NaNs when the window holds no samples. ACK times are
        nondecreasing, so the window is one contiguous slice.
        """
        times = self.rtt_times
        start = bisect_left(times, t0)
        end = bisect_right(times, t1)
        window = self.rtt_values[start:end]
        if not window:
            return (_NAN, _NAN, _NAN)
        return (sum(window) / len(window), min(window), max(window))

    def rtt_range_after(self, t0: float) -> Tuple[float, float]:
        """(min, max) of RTT samples observed at times >= t0."""
        # ACK times are nondecreasing, so the window is a suffix.
        start = bisect_left(self.rtt_times, t0)
        if start >= len(self.rtt_values):
            return (_NAN, _NAN)
        window = self.rtt_values[start:]
        return (min(window), max(window))

    # ------------------------------------------------------------------
    # Invariant sentinel hook (see repro.sim.invariants)
    # ------------------------------------------------------------------

    def scan_invariants(self, cursors: dict, now: float):
        """Incrementally validate samples appended since the last scan.

        ``cursors`` maps stream name to the first unscanned index and is
        updated in place, so repeated calls are O(new samples). Returns
        (kind, site, message) tuples; at most one per stream per scan.
        """
        errors = []
        eps = 1e-9
        start = cursors.get("rtt", 0)
        times, values = self.rtt_times, self.rtt_values
        end = min(len(times), len(values))
        if start < end:
            prev = times[start - 1] if start else -math.inf
            for i in range(start, end):
                t, v = times[i], values[i]
                if t < prev - eps:
                    errors.append((
                        "causality", "rtt_times",
                        f"ACK times regressed at sample {i}: "
                        f"{prev} -> {t}"))
                    break
                if t > now + eps:
                    errors.append((
                        "causality", "rtt_future",
                        f"ACK sample {i} at t={t} is in the future "
                        f"(now={now})"))
                    break
                if not (v > 0.0) or math.isinf(v):
                    errors.append((
                        "sanity", "rtt_values",
                        f"RTT sample {i} must be positive and finite, "
                        f"got {v!r}"))
                    break
                prev = t
            cursors["rtt"] = end
        start = cursors.get("samples", 0)
        times = self.sample_times
        end = min(len(times), len(self.cwnd_values),
                  len(self.delivered_values))
        if start < end:
            prev_t = times[start - 1] if start else -math.inf
            prev_d = self.delivered_values[start - 1] if start else 0.0
            for i in range(start, end):
                t = times[i]
                if t < prev_t - eps or t > now + eps:
                    errors.append((
                        "causality", "sample_times",
                        f"sample {i} at t={t} out of order or in the "
                        f"future (prev={prev_t}, now={now})"))
                    break
                cwnd = self.cwnd_values[i]
                # inf is legitimate for purely rate-based CCAs (see
                # repro.ccas.base); NaN or <= 0 never is.
                if not (cwnd > 0.0):
                    errors.append((
                        "sanity", "cwnd_values",
                        f"cwnd sample {i} must be positive, got {cwnd!r}"))
                    break
                pacing = self.pacing_values[i]
                # NaN is the documented "unpaced" encoding; negative or
                # infinite rates are never legitimate.
                if pacing == pacing and (pacing < 0.0
                                         or math.isinf(pacing)):
                    errors.append((
                        "sanity", "pacing_values",
                        f"pacing sample {i} must be >= 0 and finite, "
                        f"got {pacing!r}"))
                    break
                delivered = self.delivered_values[i]
                if delivered != delivered or math.isinf(delivered) \
                        or delivered < prev_d - eps:
                    errors.append((
                        "conservation", "delivered_values",
                        f"delivered-bytes sample {i} regressed or is not "
                        f"finite: {prev_d} -> {delivered!r}"))
                    break
                prev_t, prev_d = t, delivered
            cursors["samples"] = end
        return errors


class QueueRecorder:
    """Periodically samples bottleneck backlog (bytes) and delay."""

    def __init__(self, sim: Simulator, queue: BottleneckQueue,
                 sample_interval: float = 0.05) -> None:
        self.sim = sim
        self.queue = queue
        self.sample_interval = sample_interval
        self.sample_times = array("d")
        self.backlog_values = array("d")
        sim.schedule(sample_interval, self._sample)

    def _sample(self) -> None:
        self.sample_times.append(self.sim.now)
        self.backlog_values.append(self.queue.backlog_bytes)
        self.sim.schedule(self.sample_interval, self._sample)

    # ------------------------------------------------------------------
    # Invariant sentinel hook (see repro.sim.invariants)
    # ------------------------------------------------------------------

    def scan_invariants(self, cursors: dict, now: float):
        """Incrementally validate backlog samples (see FlowRecorder)."""
        errors = []
        eps = 1e-9
        start = cursors.get("backlog", 0)
        times, values = self.sample_times, self.backlog_values
        end = min(len(times), len(values))
        if start < end:
            prev_t = times[start - 1] if start else -math.inf
            for i in range(start, end):
                t, v = times[i], values[i]
                if t < prev_t - eps or t > now + eps:
                    errors.append((
                        "causality", "sample_times",
                        f"backlog sample {i} at t={t} out of order or in "
                        f"the future (prev={prev_t}, now={now})"))
                    break
                if v != v or math.isinf(v) or v < -eps:
                    errors.append((
                        "sanity", "backlog_values",
                        f"backlog sample {i} must be >= 0 and finite, "
                        f"got {v!r}"))
                    break
                prev_t = t
            cursors["backlog"] = end
        return errors

    def max_backlog(self) -> float:
        return max(self.backlog_values, default=0.0)

    def mean_backlog(self) -> float:
        if not self.backlog_values:
            return 0.0
        return sum(self.backlog_values) / len(self.backlog_values)