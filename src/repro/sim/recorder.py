"""Time-series recording for flows and queues.

Recorders attach to senders (via the ``on_ack_hooks`` list) and to the
simulator clock (periodic sampling) and accumulate plain Python lists, so
downstream analysis can turn them into numpy arrays when needed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .engine import Simulator
from .host import Receiver, Sender
from .packet import AckInfo
from .queue import BottleneckQueue


class FlowRecorder:
    """Records per-ACK RTT samples and periodic cwnd/rate/delivery samples.

    Attributes populated during the run:
        rtt_times / rtt_values: one entry per ACK processed.
        sample_times / cwnd_values / pacing_values / delivered_values /
            received_values: one entry per ``sample_interval``
            (``received_values`` stays empty without a receiver).
    """

    def __init__(self, sim: Simulator, sender: Sender,
                 sample_interval: float = 0.05,
                 receiver: Optional[Receiver] = None) -> None:
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.sample_interval = sample_interval

        self.rtt_times: List[float] = []
        self.rtt_values: List[float] = []
        self.sample_times: List[float] = []
        self.cwnd_values: List[float] = []
        self.pacing_values: List[Optional[float]] = []
        self.delivered_values: List[float] = []
        self.received_values: List[float] = []

        sender.on_ack_hooks.append(self._on_ack)
        sim.schedule(sample_interval, self._sample)

    def _on_ack(self, sender: Sender, info: AckInfo) -> None:
        self.rtt_times.append(info.now)
        self.rtt_values.append(info.rtt)

    def _sample(self) -> None:
        self.sample_times.append(self.sim.now)
        self.cwnd_values.append(self.sender.cca.cwnd_bytes)
        self.pacing_values.append(self.sender.cca.pacing_rate)
        self.delivered_values.append(self.sender.delivered_bytes)
        if self.receiver is not None:
            self.received_values.append(self.receiver.received_bytes)
        self.sim.schedule(self.sample_interval, self._sample)

    def throughput_between(self, t0: float, t1: float) -> float:
        """Average delivered rate (bytes/s) over the window [t0, t1].

        Uses the periodic delivered-bytes samples; t0/t1 snap to the
        nearest recorded samples.
        """
        return self._rate_between(self.delivered_values, t0, t1)

    def goodput_between(self, t0: float, t1: float) -> float:
        """Average receiver unique-bytes rate over [t0, t1].

        Requires the recorder to have been built with a receiver;
        returns 0.0 otherwise.
        """
        return self._rate_between(self.received_values, t0, t1)

    def _rate_between(self, values: List[float], t0: float,
                      t1: float) -> float:
        if not self.sample_times or not values or t1 <= t0:
            return 0.0
        d0 = self._value_at(values, t0)
        d1 = self._value_at(values, t1)
        return max(0.0, (d1 - d0) / (t1 - t0))

    def _value_at(self, values: List[float], t: float) -> float:
        # Binary search over sorted sample times.
        times = self.sample_times
        lo, hi = 0, min(len(times), len(values))
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return 0.0
        return values[lo - 1]

    def rtt_range_after(self, t0: float) -> Tuple[float, float]:
        """(min, max) of RTT samples observed at times >= t0."""
        values = [v for t, v in zip(self.rtt_times, self.rtt_values)
                  if t >= t0]
        if not values:
            return (float("nan"), float("nan"))
        return (min(values), max(values))


class QueueRecorder:
    """Periodically samples bottleneck backlog (bytes) and delay."""

    def __init__(self, sim: Simulator, queue: BottleneckQueue,
                 sample_interval: float = 0.05) -> None:
        self.sim = sim
        self.queue = queue
        self.sample_interval = sample_interval
        self.sample_times: List[float] = []
        self.backlog_values: List[float] = []
        sim.schedule(sample_interval, self._sample)

    def _sample(self) -> None:
        self.sample_times.append(self.sim.now)
        self.backlog_values.append(self.queue.backlog_bytes)
        self.sim.schedule(self.sample_interval, self._sample)

    def max_backlog(self) -> float:
        return max(self.backlog_values, default=0.0)

    def mean_backlog(self) -> float:
        if not self.backlog_values:
            return 0.0
        return sum(self.backlog_values) / len(self.backlog_values)
