"""The bottleneck: a byte-based FIFO queue drained at a constant rate.

This is the single shared queue of the paper's Section 3 network model.
All flows enqueue into the same FIFO; packets are dequeued at ``rate``
bytes per second and forwarded to a per-flow downstream sink. The queue
is droptail with a configurable byte capacity (``None`` = unbounded, the
"large enough to never overflow" queue the delay-convergence definition
assumes).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..errors import ConfigurationError
from .engine import Simulator
from .packet import Packet, PacketPool


class BottleneckQueue:
    """Constant-rate FIFO bottleneck with droptail buffering.

    Args:
        sim: the simulation engine.
        rate: drain rate in bytes per second.
        buffer_bytes: droptail capacity of the *waiting room* in bytes
            (the packet in service does not count). ``None`` disables
            drops entirely.
        on_drop: optional callback ``(packet, now)`` invoked on tail drop.

    Downstream routing: each flow registers a sink via
    :meth:`register_sink`; dequeued packets are forwarded to the sink for
    ``packet.flow_id``.
    """

    def __init__(self, sim: Simulator, rate: float,
                 buffer_bytes: Optional[float] = None,
                 on_drop: Optional[Callable[[Packet, float], None]] = None,
                 ecn_threshold_bytes: Optional[float] = None,
                 pool: Optional[PacketPool] = None) -> None:
        if rate <= 0:
            raise ConfigurationError(f"bottleneck rate must be > 0, got {rate}")
        if buffer_bytes is not None and buffer_bytes <= 0:
            raise ConfigurationError(
                f"buffer must be > 0 bytes or None, got {buffer_bytes}")
        self.sim = sim
        self.rate = rate
        self.buffer_bytes = buffer_bytes
        self.on_drop = on_drop
        # Section 6.4: DCTCP-style threshold marking at dequeue. ECN is
        # an unambiguous congestion signal (unlike delay and loss).
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.ecn_marks = 0
        # Recycle tail-dropped packets (only when nobody else observes
        # them via on_drop).
        self.pool = pool
        self._sinks: Dict[int, object] = {}
        self._queue: Deque[Packet] = deque()
        self._queued_bytes: float = 0.0
        self._busy = False
        self._in_service: Optional[Packet] = None
        self.arrived: int = 0
        self.drops: int = 0
        self.dropped_bytes: float = 0.0
        self.forwarded: int = 0
        self.forwarded_bytes: float = 0.0

    def register_sink(self, flow_id: int, sink: object) -> None:
        """Route dequeued packets of ``flow_id`` to ``sink.receive``."""
        self._sinks[flow_id] = sink

    @property
    def queued_bytes(self) -> float:
        """Bytes waiting (not counting the packet in service)."""
        return self._queued_bytes

    @property
    def backlog_bytes(self) -> float:
        """Bytes waiting plus the packet currently in service."""
        backlog = self._queued_bytes
        if self._in_service is not None:
            backlog += self._in_service.size
        return backlog

    def queueing_delay(self) -> float:
        """Estimated delay a newly arriving packet would wait, in seconds."""
        return self.backlog_bytes / self.rate

    def receive(self, packet: Packet, now: float) -> None:
        """Enqueue a packet, dropping it if the buffer is full."""
        self.arrived += 1
        if (self.buffer_bytes is not None
                and self._queued_bytes + packet.size > self.buffer_bytes):
            self.drops += 1
            self.dropped_bytes += packet.size
            if self.on_drop is not None:
                self.on_drop(packet, now)
            elif self.pool is not None:
                self.pool.release(packet)
            return
        self._queue.append(packet)
        self._queued_bytes += packet.size
        if not self._busy:
            self._start_service()

    def _start_service(self) -> None:
        packet = self._queue.popleft()
        self._queued_bytes -= packet.size
        self._in_service = packet
        self._busy = True
        transmission_time = packet.size / self.rate
        self.sim.schedule(transmission_time, self._finish_service)

    def _finish_service(self) -> None:
        packet = self._in_service
        assert packet is not None
        self._in_service = None
        size = packet.size
        if (self.ecn_threshold_bytes is not None
                and self._queued_bytes > self.ecn_threshold_bytes):
            packet.ecn_marked = True
            self.ecn_marks += 1
        self.forwarded += 1
        self.forwarded_bytes += size
        sink = self._sinks.get(packet.flow_id)
        if sink is not None:
            sink.receive(packet, self.sim.now)
        # Inline the next _start_service: this dequeue-forward-rearm
        # sequence runs once per packet and the extra call was visible
        # in profiles.
        queue = self._queue
        if queue:
            nxt = queue.popleft()
            self._queued_bytes -= nxt.size
            self._in_service = nxt
            self.sim.schedule(nxt.size / self.rate, self._finish_service)
        else:
            self._busy = False

    # ------------------------------------------------------------------
    # Invariant sentinel hook (see repro.sim.invariants)
    # ------------------------------------------------------------------

    def invariant_errors(self):
        """Yield (kind, site, message) for violated queue invariants."""
        errors = []
        queued = self._queued_bytes
        if queued < -1e-6:
            errors.append((
                "sanity", "occupancy_negative",
                f"queued_bytes is negative: {queued}"))
        if self.buffer_bytes is not None and queued > self.buffer_bytes + 1e-6:
            errors.append((
                "sanity", "occupancy",
                f"queued_bytes={queued} exceeds buffer capacity "
                f"{self.buffer_bytes}"))
        if self._busy and self._in_service is None:
            errors.append((
                "sanity", "service",
                "queue marked busy with no packet in service"))
        # Per-queue packet conservation: every arrival is either still
        # waiting, in service, forwarded downstream, or tail-dropped.
        # On a multi-hop path this pins down *which* queue leaked a
        # packet, where the end-to-end flow balance only says one did.
        accounted = (self.forwarded + self.drops + len(self._queue)
                     + (1 if self._in_service is not None else 0))
        if accounted != self.arrived:
            errors.append((
                "conservation", "queue_balance",
                f"arrived={self.arrived} but forwarded={self.forwarded} "
                f"+ drops={self.drops} + queued={len(self._queue)} "
                f"+ in_service={1 if self._in_service is not None else 0} "
                f"= {accounted}"))
        return errors
