"""Fluid-flow analytical model of the paper's Section 3 network."""

from .cca import (FluidAimd, FluidCCA, FluidJitterAware, FluidVegas,
                  OscillatingCCA, TargetRateCCA)
from .fluid import (Trajectory, TwoFlowResult, run_ideal_path,
                    run_shared_queue)

__all__ = [
    "FluidAimd", "FluidCCA", "FluidJitterAware", "FluidVegas",
    "OscillatingCCA", "TargetRateCCA", "Trajectory", "TwoFlowResult",
    "run_ideal_path", "run_shared_queue",
]
