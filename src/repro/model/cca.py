"""Deterministic rate-based (fluid) CCAs used by the theory machinery.

A fluid CCA is a deterministic map from observed-delay history to a
sending rate:

* ``initial_rate() -> float`` — the rate before any feedback;
* ``step(t, dt, observed_rtt) -> float`` — the rate for the next dt.

Determinism is essential: Theorem 1 replays a CCA's single-flow delay
trajectory inside a two-flow network and relies on the CCA producing the
identical rate trajectory. Every class here also implements
``clone_state()`` so the two-flow construction can start a flow from the
exact converged internal state of a single-flow run (the paper's "we
initialize the internal state of the two flows to the states ... at
times T1 and T2").
"""

from __future__ import annotations

import copy
import math
from typing import Optional

from .. import units
from ..errors import ConfigurationError


class FluidCCA:
    """Interface for deterministic fluid CCAs."""

    def initial_rate(self) -> float:
        raise NotImplementedError

    def step(self, t: float, dt: float, observed_rtt: float) -> float:
        raise NotImplementedError

    def clone_state(self) -> "FluidCCA":
        """Deep copy preserving internal state (for Theorem 1 replays)."""
        return copy.deepcopy(self)


class TargetRateCCA(FluidCCA):
    """The hypothetical delay-convergent CCA of Figures 1, 2, 5, 6.

    A first-order tracker of a decreasing rate-delay map:

        r'(t) = k * (mu(d) - r)

    with the Vegas-family map mu(d) = alpha / (d - rm_estimate). On an
    ideal path it converges (exponentially) to r = C, d = Rm + alpha/C —
    a delay-convergent CCA with delta(C) -> 0, d_max(C) = Rm + alpha/C.

    Args:
        alpha: target queue, in bytes (e.g. 4 packets = 6000).
        rm: the CCA's estimate of the propagation delay. The theory runs
            give the CCA oracular Rm (the paper's proofs allow this; see
            Section 5.2 "our proof works even if the CCA has oracular
            knowledge of Rm").
        gain: tracking gain k (1/seconds).
        initial: initial rate, bytes/s.
    """

    def __init__(self, alpha: float = 6000.0, rm: float = 0.05,
                 gain: float = 2.0, pedestal: float = 0.0,
                 rate_adaptive_gain: bool = False,
                 initial: float = units.mbps(1.0)) -> None:
        if alpha <= 0 or rm <= 0 or gain <= 0 or pedestal < 0:
            raise ConfigurationError(
                "alpha, rm, gain must be > 0; pedestal >= 0")
        self.alpha = alpha
        self.rm = rm
        self.gain = gain
        self.pedestal = pedestal
        # With rate_adaptive_gain the tracking gain scales as
        # gain * rate / alpha, mirroring how per-ACK updates in real CCAs
        # speed up with the ACK clock; this keeps the closed loop damped
        # across orders of magnitude of link rate (a fixed gain is
        # underdamped at high C and resonant at low C).
        self.rate_adaptive_gain = rate_adaptive_gain
        self.rate = initial

    def target(self, observed_rtt: float) -> float:
        """Vegas-family map, optionally shifted by a standing ``pedestal``.

        With pedestal > 0 the equilibrium keeps ``pedestal`` seconds of
        queueing at every rate (like BBR's cwnd-limited Rm of standing
        queue), which keeps the Theorem 1 construction in the proof's
        Case 1 (shared queue never empty).
        """
        queueing = max(observed_rtt - self.rm - self.pedestal, 1e-6)
        return self.alpha / queueing

    def initial_rate(self) -> float:
        return self.rate

    #: Maximum |d ln rate / dt| (1/s): the rate can at most double (or
    #: halve) every ln(2)/slew_limit seconds. This bounds the relaxation
    #: spikes the Vegas map's singularity (d -> rm + pedestal) would
    #: otherwise cause, without affecting behavior near equilibrium.
    slew_limit = 2.0

    def step(self, t: float, dt: float, observed_rtt: float) -> float:
        target = self.target(observed_rtt)
        gain = self.gain
        if self.rate_adaptive_gain:
            gain = self.gain * max(self.rate, 1.0) / self.alpha
        # Exact exponential update (stable for any dt and gain).
        decay = math.exp(-gain * dt)
        desired = target + (self.rate - target) * decay
        bound = math.exp(self.slew_limit * dt)
        desired = min(max(desired, self.rate / bound), self.rate * bound)
        self.rate = desired
        return self.rate


class FluidVegas(TargetRateCCA):
    """Alias with Vegas-flavoured defaults (alpha = 4 packets)."""

    def __init__(self, alpha_packets: float = 4.0, rm: float = 0.05,
                 gain: float = 2.0,
                 initial: float = units.mbps(1.0)) -> None:
        super().__init__(alpha=alpha_packets * units.MSS, rm=rm,
                         gain=gain, initial=initial)


class OscillatingCCA(FluidCCA):
    """A delay-convergent CCA with *non-zero* equilibrium oscillation.

    Once per ``rm`` of fluid time it compares the observed RTT against
    the Vegas-family target curve ``rm + alpha / r`` evaluated at its own
    current rate and moves multiplicatively:

        if d < rm + alpha/r:  r *= (1 + gamma)       else: r /= (1 + gamma)

    On an ideal path this converges to a bounded limit cycle around
    (r = C, d = Rm + alpha/C) whose delay width is a few gamma*rm —
    roughly constant across link rates, like BBR's pacing-mode
    delta = Rm/4. That gives the pigeonhole/emulation machinery a
    non-degenerate, *stable* delta_max at every rate (a continuous
    tracker resonates at low rates; the per-RTT multiplicative step is
    unconditionally stable because each step changes the rate by a fixed
    factor).
    """

    def __init__(self, alpha: float = 6000.0, rm: float = 0.05,
                 gamma: float = 0.05, pedestal: float = 0.0,
                 initial: float = units.mbps(1.0)) -> None:
        if not 0 < gamma < 1:
            raise ConfigurationError("gamma must be in (0, 1)")
        if alpha <= 0 or rm <= 0 or pedestal < 0:
            raise ConfigurationError("alpha, rm must be > 0; pedestal >= 0")
        self.alpha = alpha
        self.rm = rm
        self.gamma = gamma
        self.pedestal = pedestal
        self.rate = initial
        self._next_update = 0.0

    def target_delay(self) -> float:
        """The delay at which the current rate is the equilibrium.

        A non-zero ``pedestal`` keeps a standing queue of pedestal
        seconds at every rate (the way BBR's cwnd-limited mode keeps Rm
        of queueing) — this is what puts the Theorem 1 construction in
        the proof's Case 1, where d_min(C) > Rm + delta_max + eps and
        the shared queue is never empty.
        """
        return self.rm + self.pedestal + self.alpha / self.rate

    def initial_rate(self) -> float:
        return self.rate

    def step(self, t: float, dt: float, observed_rtt: float) -> float:
        if t < self._next_update:
            return self.rate
        self._next_update = t + self.rm
        if observed_rtt < self.target_delay():
            self.rate *= (1 + self.gamma)
        else:
            self.rate /= (1 + self.gamma)
        return self.rate

    def delta_bound(self) -> float:
        """Analytic bound on the equilibrium delay oscillation.

        One RTT at rate C(1+gamma) adds ~gamma*rm of delay; the limit
        cycle spans a few such steps plus the alpha/r threshold motion.
        Empirically <= 4*gamma*rm for gamma <= 0.1.
        """
        return 4 * self.gamma * self.rm


class WindowTargetCCA(FluidCCA):
    """A self-clocked, window-based delay-convergent CCA.

    Maintains a window ``w`` (bytes) and always sends at ``w / d`` — the
    fluid analogue of ACK clocking, which is what makes real window CCAs
    stable across orders of magnitude of link rate (the sending rate
    backs off automatically as delay rises even before the controller
    reacts). The controller is proportional in log-window space toward a
    target queueing delay of ``pedestal + alpha / rate``:

        d ln w / dt = kappa * clip(ln(q_target / q), -1, 1)

    On an ideal path of rate C it converges, C-independently damped, to
    d = Rm + pedestal + alpha/C with delta(C) -> 0. With pedestal > 0
    the equilibrium keeps a standing queue, which is what the Theorem 1
    construction's Case 1 requires.
    """

    def __init__(self, alpha: float = 6000.0, rm: float = 0.05,
                 pedestal: float = 0.04, kappa: float = 1.0,
                 initial: float = units.mbps(1.0)) -> None:
        if alpha <= 0 or rm <= 0 or pedestal < 0 or kappa <= 0:
            raise ConfigurationError("invalid WindowTargetCCA parameters")
        self.alpha = alpha
        self.rm = rm
        self.pedestal = pedestal
        self.kappa = kappa
        # Start from the window this rate would need at an empty queue.
        self.window = initial * (rm + pedestal)
        self._last_rtt = rm + pedestal

    def initial_rate(self) -> float:
        return self.window / self._last_rtt

    def target_queueing(self, observed_rtt: float) -> float:
        """pedestal + alpha/rate, with rate = w/d (self-clocked)."""
        return self.pedestal + self.alpha * observed_rtt / self.window

    def step(self, t: float, dt: float, observed_rtt: float) -> float:
        self._last_rtt = observed_rtt
        queueing = max(observed_rtt - self.rm, 1e-9)
        target = self.target_queueing(observed_rtt)
        drive = math.log(target / queueing)
        drive = min(max(drive, -1.0), 1.0)
        self.window *= math.exp(self.kappa * drive * dt)
        return self.window / observed_rtt


class FluidAimd(FluidCCA):
    """Fluid AIMD (Reno-style): the non-delay-convergent baseline.

    Increases rate additively and halves when the observed queueing delay
    exceeds ``threshold`` (a stand-in for a droptail loss at a full
    buffer). Its equilibrium delay oscillates over the whole buffer, so
    delta(C) is large — the paper's Section 6.2 argument for why AIMD
    resists small jitter.
    """

    def __init__(self, rm: float = 0.05, threshold: float = 0.05,
                 increase: float = units.mbps(0.2),
                 md_factor: float = 0.5,
                 initial: float = units.mbps(1.0)) -> None:
        self.rm = rm
        self.threshold = threshold
        self.increase = increase
        self.md_factor = md_factor
        self.rate = initial
        self._backoff_until = -math.inf

    def initial_rate(self) -> float:
        return self.rate

    def step(self, t: float, dt: float, observed_rtt: float) -> float:
        queueing = observed_rtt - self.rm
        if queueing > self.threshold and t >= self._backoff_until:
            self.rate *= self.md_factor
            # One backoff per "round trip" worth of time.
            self._backoff_until = t + observed_rtt
        else:
            self.rate += self.increase * dt / max(observed_rtt, 1e-3)
        return self.rate


class FluidJitterAware(FluidCCA):
    """Fluid version of the paper's Algorithm 1 (Section 6.3).

    AIMD on rate against the exponential map of Equation 2:

        mu(d) = mu_minus * s ** ((rmax - (d - rm)) / D)

    The update runs once per ``rm`` of fluid time (the paper: "the
    following is run every Rm ... change the rate by the same amount
    every RTT").
    """

    def __init__(self, jitter_bound: float, s: float = 2.0,
                 rmax: float = 0.2, mu_minus: float = units.kbps(100),
                 additive_step: Optional[float] = None,
                 md_factor: float = 0.9, rm: float = 0.05,
                 initial: Optional[float] = None) -> None:
        if jitter_bound <= 0 or s <= 1 or not 0 < md_factor < 1:
            raise ConfigurationError("invalid Algorithm 1 parameters")
        self.jitter_bound = jitter_bound
        self.s = s
        self.rmax = rmax
        self.mu_minus = mu_minus
        self.additive_step = (additive_step if additive_step is not None
                              else mu_minus / 2)
        self.md_factor = md_factor
        self.rm = rm
        self.rate = initial if initial is not None else mu_minus
        self._next_update = 0.0

    def target(self, observed_rtt: float) -> float:
        queueing = max(0.0, observed_rtt - self.rm)
        exponent = (self.rmax - queueing) / self.jitter_bound
        return self.mu_minus * self.s ** exponent

    def initial_rate(self) -> float:
        return self.rate

    def step(self, t: float, dt: float, observed_rtt: float) -> float:
        if t < self._next_update:
            return self.rate
        self._next_update = t + self.rm
        if self.rate < self.target(observed_rtt):
            self.rate += self.additive_step
        else:
            self.rate *= self.md_factor
        return self.rate
