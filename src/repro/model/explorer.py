"""Bounded adversarial trace search — the offline CCAC substitute.

The paper uses the CCAC SMT verifier (extended to multiple flows in
Appendix C) for two jobs:

1. *find* network behaviors that break a CCA (unfairness,
   under-utilization);
2. *prove the absence* of such behaviors over short horizons.

z3 is not available in this environment, so this module reimplements
both jobs over a discretized version of the Section 3 model:

* time advances in steps of one Rm;
* the adversary chooses, per flow and per step, a jitter value from
  ``{0, D}`` (the extreme points — the model's delay set is an interval,
  and the CCAs here react monotonically to delay, so extremes maximize
  harm) and optionally a non-congestive loss;
* job 1 runs guided random rollouts plus a greedy one-step lookahead;
* job 2 runs exhaustive enumeration over all adversary choices up to a
  small horizon. Unlike CCAC's relaxed SMT encoding this is exact over
  the discretized adversary; like CCAC it says nothing beyond the
  horizon.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError


class DiscreteFlow:
    """Interface for a flow controller in the discretized model.

    Implementations must be deterministic and cloneable so the search
    can branch. ``advance`` receives the delay the flow observed for the
    packets of the previous step and whether it saw loss, and returns
    the bytes it will send during the next step.
    """

    def clone(self) -> "DiscreteFlow":
        raise NotImplementedError

    def advance(self, observed_delay: float, lost: bool) -> float:
        raise NotImplementedError


class AimdFlow(DiscreteFlow):
    """Window AIMD (NewReno abstraction) for the Appendix C experiments.

    cwnd grows by one packet per step (~RTT) and halves on loss. The
    send amount per step is the window (ACK clocking at steady state).
    """

    def __init__(self, mss: float = 1500.0, initial_packets: float = 10.0,
                 md_factor: float = 0.5) -> None:
        self.mss = mss
        self.cwnd = initial_packets * mss
        self.md_factor = md_factor

    def clone(self) -> "AimdFlow":
        copy = AimdFlow(mss=self.mss, md_factor=self.md_factor)
        copy.cwnd = self.cwnd
        return copy

    def advance(self, observed_delay: float, lost: bool) -> float:
        if lost:
            self.cwnd = max(self.cwnd * self.md_factor, self.mss)
        else:
            self.cwnd += self.mss
        return self.cwnd


class JitterAwareFlow(DiscreteFlow):
    """Discrete version of the paper's Algorithm 1 (Section 6.3)."""

    def __init__(self, jitter_bound: float, rm: float, s: float = 2.0,
                 rmax: float = 0.2, mu_minus: float = 12500.0,
                 additive_step: Optional[float] = None,
                 md_factor: float = 0.9,
                 initial_rate: Optional[float] = None) -> None:
        self.jitter_bound = jitter_bound
        self.rm = rm
        self.s = s
        self.rmax = rmax
        self.mu_minus = mu_minus
        self.additive_step = (additive_step if additive_step is not None
                              else mu_minus / 2)
        self.md_factor = md_factor
        self.rate = initial_rate if initial_rate is not None else mu_minus

    def clone(self) -> "JitterAwareFlow":
        copy = JitterAwareFlow(
            jitter_bound=self.jitter_bound, rm=self.rm, s=self.s,
            rmax=self.rmax, mu_minus=self.mu_minus,
            additive_step=self.additive_step, md_factor=self.md_factor)
        copy.rate = self.rate
        return copy

    def target_rate(self, observed_delay: float) -> float:
        queueing = max(0.0, observed_delay - self.rm)
        exponent = (self.rmax - queueing) / self.jitter_bound
        return self.mu_minus * self.s ** exponent

    def advance(self, observed_delay: float, lost: bool) -> float:
        if lost or self.rate >= self.target_rate(observed_delay):
            self.rate *= self.md_factor
        else:
            self.rate += self.additive_step
        self.rate = max(self.rate, self.mu_minus * self.md_factor)
        return self.rate * self.rm   # bytes per step of length rm


@dataclass
class NetParams:
    """Discretized Section 3 network."""

    link_rate: float                 # bytes/s
    rm: float                        # step length, seconds
    jitter_bound: float              # D
    buffer_bytes: float = math.inf   # droptail capacity
    allow_loss_injection: bool = False

    def __post_init__(self) -> None:
        if self.link_rate <= 0 or self.rm <= 0 or self.jitter_bound < 0:
            raise ConfigurationError("invalid network parameters")


@dataclass
class TraceStep:
    """One step of adversary choices: per-flow jitter and loss."""

    jitters: Tuple[float, ...]
    losses: Tuple[bool, ...]


@dataclass
class TraceResult:
    """Outcome of simulating one adversary trace."""

    steps: List[TraceStep]
    delivered: List[float]           # per-flow delivered bytes
    queue_history: List[float]
    objective: float

    def throughput_ratio(self) -> float:
        lo = min(self.delivered)
        hi = max(self.delivered)
        if lo <= 0:
            return math.inf if hi > 0 else 1.0
        return hi / lo

    def utilization(self, link_rate: float, rm: float) -> float:
        total_capacity = link_rate * rm * len(self.steps)
        if total_capacity <= 0:
            return 0.0
        return sum(self.delivered) / total_capacity


def simulate_trace(flows: Sequence[DiscreteFlow], net: NetParams,
                   steps: Sequence[TraceStep]) -> TraceResult:
    """Deterministically run a trace of adversary choices."""
    states = [flow.clone() for flow in flows]
    n = len(states)
    queue = 0.0
    delivered = [0.0] * n
    queue_history: List[float] = []
    # Initial observation: empty path.
    observed = [net.rm] * n
    lost = [False] * n
    capacity = net.link_rate * net.rm
    for step in steps:
        sends = [max(states[i].advance(observed[i], lost[i]), 0.0)
                 for i in range(n)]
        arrivals = sum(sends)
        room = (net.buffer_bytes - queue if math.isfinite(net.buffer_bytes)
                else math.inf)
        overflow = max(0.0, arrivals - room) if math.isfinite(room) else 0.0
        accepted_fraction = 1.0 if arrivals <= 0 else (
            max(0.0, arrivals - overflow) / arrivals)
        queue += arrivals * accepted_fraction
        served = min(queue, capacity)
        queue -= served
        queue_delay = queue / net.link_rate
        for i in range(n):
            share = sends[i] / arrivals if arrivals > 0 else 0.0
            delivered[i] += served * share
            dropped = overflow * share > 0.0
            injected = step.losses[i] if net.allow_loss_injection else False
            lost[i] = dropped or injected
            observed[i] = net.rm + queue_delay + step.jitters[i]
        queue_history.append(queue)
    return TraceResult(steps=list(steps), delivered=delivered,
                       queue_history=queue_history, objective=0.0)


#: An objective maps a TraceResult to a score to MAXIMIZE.
Objective = Callable[[TraceResult], float]


def unfairness_objective(result: TraceResult) -> float:
    """Throughput ratio between the luckiest and unluckiest flow."""
    ratio = result.throughput_ratio()
    return 1e12 if math.isinf(ratio) else ratio


def underutilization_objective(net: NetParams) -> Objective:
    """1 - utilization (bigger = worse for the CCA)."""

    def objective(result: TraceResult) -> float:
        return 1.0 - result.utilization(net.link_rate, net.rm)

    return objective


@dataclass
class SearchReport:
    """Result of an adversarial search."""

    best: TraceResult
    traces_evaluated: int
    exhaustive: bool
    horizon: int

    @property
    def best_objective(self) -> float:
        return self.best.objective


def _adversary_choices(n_flows: int, net: NetParams
                       ) -> List[Tuple[Tuple[float, ...],
                                       Tuple[bool, ...]]]:
    jitter_options = list(itertools.product((0.0, net.jitter_bound),
                                            repeat=n_flows))
    if net.allow_loss_injection:
        loss_options = list(itertools.product((False, True),
                                              repeat=n_flows))
    else:
        loss_options = [tuple([False] * n_flows)]
    return [(j, l) for j in jitter_options for l in loss_options]


def exhaustive_search(flows: Sequence[DiscreteFlow], net: NetParams,
                      horizon: int, objective: Objective,
                      max_traces: int = 2_000_000) -> SearchReport:
    """Enumerate every adversary trace up to ``horizon`` steps.

    This is the "prove absence over short horizons" job: if the returned
    best objective is below a threshold, no discretized adversary of
    this length can do better (exactly — no relaxation).
    """
    choices = _adversary_choices(len(flows), net)
    total = len(choices) ** horizon
    if total > max_traces:
        raise ConfigurationError(
            f"{total} traces exceed the max_traces budget {max_traces}; "
            "reduce the horizon or use guided_search")
    best: Optional[TraceResult] = None
    count = 0
    for combo in itertools.product(choices, repeat=horizon):
        steps = [TraceStep(jitters=j, losses=l) for j, l in combo]
        result = simulate_trace(flows, net, steps)
        result.objective = objective(result)
        count += 1
        if best is None or result.objective > best.objective:
            best = result
    assert best is not None
    return SearchReport(best=best, traces_evaluated=count,
                        exhaustive=True, horizon=horizon)


def guided_search(flows: Sequence[DiscreteFlow], net: NetParams,
                  horizon: int, objective: Objective,
                  rollouts: int = 200, seed: int = 0,
                  greedy_fraction: float = 0.5) -> SearchReport:
    """Randomized rollouts with epsilon-greedy per-step choice.

    The "find bad behavior" job: each rollout builds a trace step by
    step; with probability ``greedy_fraction`` the step is chosen by
    one-step lookahead on the objective, otherwise uniformly at random.
    """
    choices = _adversary_choices(len(flows), net)
    rng = random.Random(seed)
    best: Optional[TraceResult] = None
    evaluated = 0
    for _ in range(rollouts):
        steps: List[TraceStep] = []
        for _ in range(horizon):
            if rng.random() < greedy_fraction and steps:
                scored = []
                for jitters, losses in choices:
                    candidate = steps + [TraceStep(jitters, losses)]
                    result = simulate_trace(flows, net, candidate)
                    scored.append((objective(result), jitters, losses))
                    evaluated += 1
                scored.sort(key=lambda item: item[0], reverse=True)
                _, jitters, losses = scored[0]
            else:
                jitters, losses = rng.choice(choices)
            steps.append(TraceStep(jitters=jitters, losses=losses))
        result = simulate_trace(flows, net, steps)
        result.objective = objective(result)
        evaluated += 1
        if best is None or result.objective > best.objective:
            best = result
    assert best is not None
    return SearchReport(best=best, traces_evaluated=evaluated,
                        exhaustive=False, horizon=horizon)
