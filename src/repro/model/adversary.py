"""Non-congestive delay adversaries (jitter schedules) for the fluid model.

The Section 3 network model lets the adversary pick any eta(t) in [0, D]
per flow, non-deterministically but without randomness. These schedules
are the ones the paper's analysis and experiments use, plus the
trace-playback schedule the Theorem 1 construction emits.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


def constant(eta: float) -> Callable[[float], float]:
    """eta(t) = eta: persistent non-congestive delay (mean != 0, the
    reason averaging filters fail — Section 3)."""
    if eta < 0:
        raise ConfigurationError("eta must be >= 0")
    return lambda t: eta


def zero() -> Callable[[float], float]:
    """The ideal path: no non-congestive delay."""
    return lambda t: 0.0


def square_wave(high: float, period: float, duty: float = 0.5,
                phase: float = 0.0) -> Callable[[float], float]:
    """On/off jitter (scheduler bursts, Wi-Fi contention)."""
    if high < 0 or period <= 0 or not 0 <= duty <= 1:
        raise ConfigurationError("invalid square wave parameters")

    def eta(t: float) -> float:
        position = ((t + phase) % period) / period
        return high if position < duty else 0.0

    return eta


def sawtooth(high: float, period: float) -> Callable[[float], float]:
    """Linearly growing then resetting delay (token-bucket refill shape)."""
    if high < 0 or period <= 0:
        raise ConfigurationError("invalid sawtooth parameters")
    return lambda t: high * ((t % period) / period)


def step_at(time: float, eta: float) -> Callable[[float], float]:
    """Zero before ``time``, then constant eta (path change mid-flow)."""
    if eta < 0:
        raise ConfigurationError("eta must be >= 0")
    return lambda t: eta if t >= time else 0.0


def from_table(times: np.ndarray, values: np.ndarray,
               bound: float = math.inf) -> Callable[[float], float]:
    """Step-interpolated playback of a sampled schedule (clamped >= 0).

    This is how Theorem 1's :class:`~repro.core.emulation.EmulationPlan`
    schedules are replayed in the fluid or packet simulators.
    """
    if len(times) != len(values):
        raise ConfigurationError("times and values must have equal length")
    if len(times) < 1:
        raise ConfigurationError("schedule must not be empty")
    dt = float(times[1] - times[0]) if len(times) > 1 else 1.0
    table = np.clip(np.asarray(values, dtype=float), 0.0, bound)

    def eta(t: float) -> float:
        index = int(t / dt)
        if index < 0:
            index = 0
        if index >= len(table):
            index = len(table) - 1
        return float(table[index])

    return eta


def pick_worst_phase(make_eta: Callable[[float], Callable[[float], float]],
                     phases: Sequence[float],
                     evaluate: Callable[[Callable[[float], float]], float]
                     ) -> Tuple[float, float]:
    """Grid-search a schedule's phase for the worst objective value.

    A tiny helper for adversarial sweeps: ``make_eta(phase)`` builds a
    schedule, ``evaluate(eta)`` runs an experiment and returns a score to
    *minimize* (e.g. the victim flow's throughput). Returns
    ``(best_phase, best_score)``.
    """
    best_phase = None
    best_score = math.inf
    for phase in phases:
        score = evaluate(make_eta(phase))
        if score < best_score:
            best_score = score
            best_phase = phase
    return best_phase, best_score
