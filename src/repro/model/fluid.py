"""Fluid-flow network model of the paper's Section 3.

The proofs of Theorems 1-3 are stated over deterministic trajectories: a
single FIFO queue drained at a constant rate, a propagation delay Rm, and
a per-flow non-congestive delay eta(t) in [0, D]. This module integrates
those dynamics exactly (forward Euler on a fixed grid):

* ideal path (single flow, eta = 0):
      d'(t) = (r(t) - C) / C        while the queue is non-empty,
      d(t) >= Rm                    always;
* shared queue (two flows):
      d*'(t) = (r1(t) + r2(t) - C) / C,
  and flow i observes d*(t) + eta_i(t).

A *fluid CCA* is a deterministic map from observed-delay history to a
sending rate, exposed as ``step(t, dt, observed_rtt) -> rate`` (see
:mod:`repro.model.cca`). Determinism is what lets the Theorem 1
construction replay single-flow trajectories inside a two-flow scenario.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass
class Trajectory:
    """A recorded single-flow run on an ideal path.

    Attributes:
        times: sample grid (seconds), uniform spacing dt.
        delays: observed RTT d(t) at each sample.
        rates: sending rate r(t) at each sample (bytes/s).
        link_rate: the path's bottleneck rate C (bytes/s).
        rm: propagation RTT.
        dt: grid spacing.
    """

    times: np.ndarray
    delays: np.ndarray
    rates: np.ndarray
    link_rate: float
    rm: float
    dt: float

    def throughput(self, t0: float = 0.0) -> float:
        """Mean sending rate over [t0, end] (the fluid has no losses, so
        sending rate equals delivered rate up to the queue backlog)."""
        mask = self.times >= t0
        if not mask.any():
            return 0.0
        return float(self.rates[mask].mean())

    def delay_range(self, t0: float) -> tuple:
        """(d_min, d_max) over samples at times >= t0."""
        mask = self.times >= t0
        if not mask.any():
            return (math.nan, math.nan)
        window = self.delays[mask]
        return (float(window.min()), float(window.max()))

    def shifted(self, t0: float) -> "Trajectory":
        """Time-shift so that ``t0`` becomes the origin (the paper's
        bar-d / bar-r trajectories with the origin at convergence)."""
        mask = self.times >= t0 - 1e-12
        return Trajectory(
            times=self.times[mask] - self.times[mask][0],
            delays=self.delays[mask].copy(),
            rates=self.rates[mask].copy(),
            link_rate=self.link_rate,
            rm=self.rm,
            dt=self.dt,
        )


def run_ideal_path(cca, link_rate: float, rm: float, duration: float,
                   dt: float = 1e-3,
                   jitter: Optional[Callable[[float], float]] = None
                   ) -> Trajectory:
    """Run a fluid CCA on an ideal path (optionally with added jitter).

    Args:
        cca: object with ``initial_rate()`` and ``step(t, dt, rtt)``.
        link_rate: bottleneck rate C, bytes/s.
        rm: propagation RTT, seconds.
        duration: run length, seconds.
        dt: integration step.
        jitter: optional eta(t) added to the *observed* delay (the
            network model's non-congestive element); the queue itself is
            unaffected.

    Returns a :class:`Trajectory` of observed delays and sending rates.
    """
    if link_rate <= 0 or rm <= 0 or duration <= 0 or dt <= 0:
        raise ConfigurationError("link_rate, rm, duration, dt must be > 0")
    steps = int(round(duration / dt))
    times = np.arange(steps) * dt
    delays = np.empty(steps)
    rates = np.empty(steps)
    queue_delay = 0.0
    rate = cca.initial_rate()
    for i in range(steps):
        t = times[i]
        eta = jitter(t) if jitter is not None else 0.0
        observed = rm + queue_delay + eta
        delays[i] = observed
        rates[i] = rate
        # Queue evolution over [t, t+dt).
        queue_delay += (rate - link_rate) / link_rate * dt
        if queue_delay < 0.0:
            queue_delay = 0.0
        rate = cca.step(t + dt, dt, observed)
        if rate < 0:
            rate = 0.0
    return Trajectory(times=times, delays=delays, rates=rates,
                      link_rate=link_rate, rm=rm, dt=dt)


@dataclass
class TwoFlowResult:
    """Result of a shared-queue two-flow fluid run."""

    times: np.ndarray
    shared_delay: np.ndarray      # d*(t): Rm + queueing delay
    observed_delays: List[np.ndarray]
    rates: List[np.ndarray]
    etas: List[np.ndarray]
    link_rate: float
    rm: float

    def throughputs(self, t0: float = 0.0) -> List[float]:
        mask = self.times >= t0
        return [float(r[mask].mean()) for r in self.rates]

    def throughput_ratio(self, t0: float = 0.0) -> float:
        rates = sorted(self.throughputs(t0))
        if rates[0] <= 0:
            return math.inf
        return rates[-1] / rates[0]


def run_shared_queue(ccas: Sequence, link_rate: float, rm: float,
                     duration: float,
                     etas: Sequence[Callable[[float], float]],
                     initial_queue_delay: float = 0.0,
                     dt: float = 1e-3) -> TwoFlowResult:
    """Run several fluid CCAs over one shared FIFO queue.

    Each flow i observes ``rm + queue_delay(t) + etas[i](t)``. The
    adversary (Theorem 1) is a particular choice of the eta schedules and
    the initial queue delay.
    """
    if len(ccas) != len(etas):
        raise ConfigurationError("need one eta schedule per CCA")
    steps = int(round(duration / dt))
    times = np.arange(steps) * dt
    n = len(ccas)
    shared = np.empty(steps)
    observed = [np.empty(steps) for _ in range(n)]
    rates = [np.empty(steps) for _ in range(n)]
    eta_series = [np.empty(steps) for _ in range(n)]
    queue_delay = float(initial_queue_delay)
    current = [cca.initial_rate() for cca in ccas]
    for i in range(steps):
        t = times[i]
        shared[i] = rm + queue_delay
        total_rate = 0.0
        for k in range(n):
            eta = etas[k](t)
            eta_series[k][i] = eta
            obs = rm + queue_delay + eta
            observed[k][i] = obs
            rates[k][i] = current[k]
            total_rate += current[k]
        queue_delay += (total_rate - link_rate) / link_rate * dt
        if queue_delay < 0.0:
            queue_delay = 0.0
        for k in range(n):
            new_rate = ccas[k].step(t + dt, dt, observed[k][i])
            current[k] = max(new_rate, 0.0)
    return TwoFlowResult(times=times, shared_delay=shared,
                         observed_delays=observed, rates=rates,
                         etas=eta_series, link_rate=link_rate, rm=rm)
