"""Delay-convergence (Definition 1) measurement and certification.

A CCA is *delay-convergent* if, on an ideal path, there is a time T after
which the observed RTT stays in a bounded interval
``[d_min(C), d_max(C)]``, and both ``d_max(C)`` and
``delta(C) = d_max(C) - d_min(C)`` are bounded for all link rates above
some lambda.

This module measures those quantities from trajectories: it finds the
convergence time T empirically (the earliest time after which the delay
range stops shrinking meaningfully) and reports the converged range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConvergenceError
from ..model.fluid import Trajectory, run_ideal_path


@dataclass
class ConvergedRange:
    """The equilibrium delay range of one (CCA, link-rate) pair."""

    link_rate: float
    rm: float
    t_converged: float
    d_min: float
    d_max: float

    @property
    def delta(self) -> float:
        """delta(C) = d_max(C) - d_min(C)."""
        return self.d_max - self.d_min

    @property
    def midpoint(self) -> float:
        return (self.d_max + self.d_min) / 2


def find_convergence_time(trajectory: Trajectory,
                          tail_fraction: float = 0.25,
                          tolerance: float = 1.05) -> float:
    """Earliest time from which the delay range matches the tail range.

    The tail of the run (the last ``tail_fraction``) defines the
    converged range; we walk backwards for the earliest suffix whose
    range is within ``tolerance`` x the tail range (absolute widths are
    compared around the shared midpoint).
    """
    times, delays = trajectory.times, trajectory.delays
    n = len(times)
    if n < 10:
        raise ConvergenceError("trajectory too short to analyze")
    tail_start = int(n * (1 - tail_fraction))
    tail = delays[tail_start:]
    tail_lo, tail_hi = float(tail.min()), float(tail.max())
    width = max(tail_hi - tail_lo, 1e-9)
    slack = (tolerance - 1) * max(width, 0.01 * (tail_hi - trajectory.rm))
    lo_bound = tail_lo - slack
    hi_bound = tail_hi + slack
    # Earliest index from which all delays stay within the widened band.
    # Note a trajectory that never converges (e.g. a growing ramp) still
    # returns a time here — but its measured range is as wide as the
    # tail itself, which downstream certificates reject via delta/d_max
    # bounds.
    inside = (delays >= lo_bound) & (delays <= hi_bound)
    outside = np.nonzero(~inside)[0]
    if len(outside) == 0:
        return float(times[0])
    first_inside = min(outside[-1] + 1, n - 1)
    return float(times[first_inside])


def measure_converged_range(trajectory: Trajectory,
                            tail_fraction: float = 0.25,
                            tolerance: float = 1.05) -> ConvergedRange:
    """Measure [d_min(C), d_max(C)] after the convergence time."""
    t_conv = find_convergence_time(trajectory, tail_fraction, tolerance)
    d_min, d_max = trajectory.delay_range(t_conv)
    return ConvergedRange(link_rate=trajectory.link_rate,
                          rm=trajectory.rm, t_converged=t_conv,
                          d_min=d_min, d_max=d_max)


def measure_cca_range(cca_factory: Callable[[], object], link_rate: float,
                      rm: float, duration: float = 30.0,
                      dt: float = 1e-3) -> ConvergedRange:
    """Run a fresh fluid CCA on an ideal path and measure its range."""
    trajectory = run_ideal_path(cca_factory(), link_rate, rm, duration, dt)
    return measure_converged_range(trajectory)


@dataclass
class ConvergenceCertificate:
    """Empirical check of Definition 1 over a grid of link rates.

    ``is_delay_convergent`` holds when every measured d_max is below
    ``d_max_bound`` and every delta below ``delta_bound`` for rates above
    ``lam`` (the definition's lambda).
    """

    ranges: List[ConvergedRange]
    lam: float
    d_max_bound: float
    delta_bound: float

    @property
    def is_delay_convergent(self) -> bool:
        applicable = [r for r in self.ranges if r.link_rate > self.lam]
        if not applicable:
            return False
        return all(r.d_max < self.d_max_bound
                   and r.delta < self.delta_bound for r in applicable)

    @property
    def delta_max(self) -> float:
        """The tightest empirical delta_max over rates above lambda."""
        applicable = [r.delta for r in self.ranges if r.link_rate > self.lam]
        if not applicable:
            return math.nan
        return max(applicable)


def certify_delay_convergence(cca_factory: Callable[[], object],
                              link_rates: Sequence[float], rm: float,
                              lam: Optional[float] = None,
                              duration: float = 30.0,
                              dt: float = 1e-3,
                              d_max_bound: Optional[float] = None,
                              delta_bound: Optional[float] = None
                              ) -> ConvergenceCertificate:
    """Measure converged ranges across ``link_rates`` and certify.

    When the bounds are not given they are inferred with 10% headroom
    from the measurements themselves, so the certificate records the
    empirical (d_max_bound, delta_bound, lambda) witness for Definition 1.
    """
    ranges = [measure_cca_range(cca_factory, rate, rm, duration, dt)
              for rate in link_rates]
    lam_value = lam if lam is not None else min(link_rates) * 0.99
    applicable = [r for r in ranges if r.link_rate > lam_value]
    if d_max_bound is None:
        d_max_bound = max(r.d_max for r in applicable) * 1.1
    if delta_bound is None:
        delta_bound = max(max(r.delta for r in applicable) * 1.1, 1e-6)
    return ConvergenceCertificate(ranges=ranges, lam=lam_value,
                                  d_max_bound=d_max_bound,
                                  delta_bound=delta_bound)
