"""Fairness and efficiency definitions (paper Definitions 2-4).

* *Throughput* of a flow at time t: bytes acknowledged in [0, t] / t.
* *s-fairness* (Definition 2): there is a finite time t after which the
  faster/slower throughput ratio stays below s.
* *Starvation* (Definition 3): the network is not s-fair for any finite s.
* *f-efficiency* (Definition 4): on an ideal path of rate C the CCA's
  delivered bytes reach f*C*t' for arbitrarily large t'.

Empirical runs are finite, so this module provides finite-horizon
estimators of these properties plus standard fairness metrics (Jain's
index) used in reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def throughput_ratio(throughputs: Sequence[float]) -> float:
    """Faster flow's throughput over the slower's (>= 1; inf if one is 0)."""
    if len(throughputs) < 2:
        return 1.0
    lo = min(throughputs)
    hi = max(throughputs)
    if lo <= 0:
        return math.inf if hi > 0 else 1.0
    return hi / lo


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]."""
    xs = np.asarray(list(throughputs), dtype=float)
    if len(xs) == 0 or (xs == 0).all():
        return 1.0
    return float(xs.sum() ** 2 / (len(xs) * (xs ** 2).sum()))


@dataclass
class SFairnessVerdict:
    """Finite-horizon s-fairness check over a throughput-ratio series.

    ``is_s_fair`` holds when, from some sample onward, the running
    cumulative throughput ratio stays below s.
    """

    s: float
    satisfied_from: float   # nan when never satisfied in the horizon
    final_ratio: float

    @property
    def is_s_fair(self) -> bool:
        return not math.isnan(self.satisfied_from)


def check_s_fairness(times: np.ndarray,
                     cumulative_bytes: Sequence[np.ndarray],
                     s: float) -> SFairnessVerdict:
    """Check Definition 2 over recorded cumulative-delivery curves.

    Args:
        times: shared sample grid (seconds, increasing, > 0 tail).
        cumulative_bytes: per-flow cumulative delivered bytes at ``times``.
        s: the fairness bound to test.
    """
    if s < 1:
        raise ValueError(f"s must be >= 1, got {s}")
    curves = [np.asarray(c, dtype=float) for c in cumulative_bytes]
    valid = times > 0
    ratios = np.empty(valid.sum())
    ts = times[valid]
    stacked = np.vstack([c[valid] / ts for c in curves])
    hi = stacked.max(axis=0)
    lo = stacked.min(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(lo > 0, hi / lo, math.inf)
    final = float(ratios[-1]) if len(ratios) else math.inf
    below = ratios < s
    # satisfied_from = earliest time from which all later samples hold.
    if not below.any() or not below[-1]:
        return SFairnessVerdict(s=s, satisfied_from=math.nan,
                                final_ratio=final)
    above = np.nonzero(~below)[0]
    start_idx = (above[-1] + 1) if len(above) else 0
    return SFairnessVerdict(s=s, satisfied_from=float(ts[start_idx]),
                            final_ratio=final)


@dataclass
class EfficiencyVerdict:
    """Finite-horizon f-efficiency estimate (Definition 4)."""

    f: float
    best_fraction: float     # max over t' of delivered(t') / (C * t')
    achieved_at: float

    @property
    def is_f_efficient(self) -> bool:
        return self.best_fraction >= self.f


def check_f_efficiency(times: np.ndarray, cumulative_bytes: np.ndarray,
                       link_rate: float, f: float,
                       after: float = 0.0) -> EfficiencyVerdict:
    """Estimate Definition 4: does delivered(t')/ (C t') reach f?

    Because the definition only needs the fraction to reach f at
    arbitrarily large times, the finite-horizon estimator reports the
    best fraction achieved after ``after``.
    """
    if not 0 < f <= 1:
        raise ValueError(f"f must be in (0, 1], got {f}")
    mask = times > max(after, 0.0)
    ts = times[mask]
    delivered = np.asarray(cumulative_bytes, dtype=float)[mask]
    if len(ts) == 0:
        return EfficiencyVerdict(f=f, best_fraction=0.0,
                                 achieved_at=math.nan)
    fractions = delivered / (link_rate * ts)
    best = int(np.argmax(fractions))
    return EfficiencyVerdict(f=f, best_fraction=float(fractions[best]),
                             achieved_at=float(ts[best]))


def starvation_evidence(ratio_series: Sequence[float],
                        thresholds: Sequence[float] = (2, 5, 10, 50, 100)
                        ) -> dict:
    """Summarize how many fairness thresholds a run's final ratio exceeds.

    True starvation (unbounded ratio) cannot be established by a finite
    run; this helper reports which candidate s values the observed ratio
    already violates, which is how the paper's empirical sections argue.
    """
    final = ratio_series[-1] if len(ratio_series) else 1.0
    return {
        "final_ratio": final,
        "violated_s": [s for s in thresholds if final >= s],
    }
