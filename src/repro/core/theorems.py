"""End-to-end constructors for the paper's three theorems.

* :func:`construct_starvation` — Theorem 1: for a deterministic,
  f-efficient, delay-convergent (fluid) CCA and any s >= 1, build a
  two-flow scenario with throughput ratio >= s whenever D > 2*delta_max.
* :func:`construct_underutilization` — Theorem 2: when d_max(C) <= D for
  some C, emulate the small link's delays on an arbitrarily fast link,
  driving utilization to ~C/C' -> 0.
* :func:`construct_strong_model_starvation` — Theorem 3: in the strong
  model (adversary also controls the queueing delay), iteratively
  subtract D from the delay trace until the throughputs of consecutive
  traces differ by more than s; run the pair on one queue with eta = D
  vs eta = 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..errors import ConvergenceError, EmulationInfeasibleError
from ..model.fluid import (Trajectory, TwoFlowResult, run_ideal_path,
                           run_shared_queue)
from .convergence import ConvergedRange, measure_converged_range
from .emulation import EmulationPlan, build_emulation_plan
from .pigeonhole import PigeonholePair, find_pigeonhole_pair


@dataclass
class StarvationConstruction:
    """Everything Theorem 1 produces for one CCA.

    ``case`` records which branch of the proof applied: 1 = the shared
    queue is never empty and d*(t) follows Equation 5; 2 = the faster
    rate's queueing is below delta_max + eps, so a much faster shared
    link with eta_i = bar_d_i - Rm emulates both flows directly.
    """

    pair: PigeonholePair
    plan: EmulationPlan
    traj1: Trajectory
    traj2: Trajectory
    two_flow: TwoFlowResult
    s_target: float
    jitter_bound: float
    case: int

    @property
    def achieved_ratio(self) -> float:
        return self.two_flow.throughput_ratio()

    @property
    def starved(self) -> bool:
        return self.achieved_ratio >= self.s_target


def construct_starvation(cca_factory: Callable[[float], object],
                         rm: float, s: float, f: float,
                         delta_max: float,
                         jitter_bound: Optional[float] = None,
                         lam: Optional[float] = None,
                         d_max_bound: Optional[float] = None,
                         duration: float = 30.0,
                         emulate_duration: float = 10.0,
                         dt: float = 1e-3) -> StarvationConstruction:
    """Run the full Theorem 1 pipeline on a fluid CCA.

    Args:
        cca_factory: ``cca_factory(initial_rate)`` returns a fresh,
            deterministic fluid CCA (see :mod:`repro.model.cca`). The
            initial rate argument lets Step 3 start the two-flow run
            from the converged states.
        rm: propagation RTT.
        s: target throughput ratio (>= 1).
        f: efficiency constant of the CCA (0 < f <= 1).
        delta_max: the CCA's equilibrium-oscillation bound.
        jitter_bound: the model's D; default 2*delta_max + 4*epsilon
            with epsilon chosen from the delay space. Must satisfy
            D > 2*delta_max.
        lam: rate floor for Definition 1 (default: 10 packets per rm).
        d_max_bound: delay-space ceiling (default: measured at lam with
            10% headroom).
        duration: single-flow run length used to measure convergence.
        emulate_duration: post-convergence horizon emulated in two-flow.
        dt: integration step.
    """
    if lam is None:
        lam = 10 * 1500 / rm
    measured_cache = {}

    def measure(rate: float) -> ConvergedRange:
        if rate not in measured_cache:
            traj = run_ideal_path(cca_factory(rate / 2), rate, rm,
                                  duration, dt)
            measured_cache[rate] = (traj,
                                    measure_converged_range(traj))
        return measured_cache[rate][1]

    base = measure(lam)
    if d_max_bound is None:
        d_max_bound = base.d_max * 1.1
    if jitter_bound is None:
        epsilon = max((d_max_bound - rm) / 40, delta_max / 4, dt)
        jitter_bound = 2 * (delta_max + epsilon) * 1.01
    else:
        if jitter_bound <= 2 * delta_max:
            raise ConvergenceError(
                f"Theorem 1 needs D > 2*delta_max "
                f"(D={jitter_bound}, delta_max={delta_max})")
        epsilon = jitter_bound / 2 - delta_max

    pair = find_pigeonhole_pair(measure, lam, s, f, epsilon, rm,
                                d_max_bound)
    traj1 = measured_cache[pair.c1.link_rate][0]
    traj2 = measured_cache[pair.c2.link_rate][0]

    slack = delta_max + epsilon
    case = 1 if min(pair.c1.d_min, pair.c2.d_min) > rm + slack else 2
    if case == 1:
        # Equation 5 adversary: shared rate C1+C2, pre-filled queue.
        plan = build_emulation_plan(
            traj1, traj2, pair.c1.t_converged, pair.c2.t_converged,
            delta_max, epsilon, jitter_bound)
        link_rate = plan.link_rate
        initial_queue_delay = plan.initial_queue_delay
    else:
        # Case 2: the faster link's queueing is below slack, so both
        # delays fit under Rm + D and a link fast enough to keep its own
        # queue empty lets the jitter element emulate everything.
        bar1 = traj1.shifted(pair.c1.t_converged)
        bar2 = traj2.shifted(pair.c2.t_converged)
        n = min(len(bar1.times), len(bar2.times))
        times = bar1.times[:n]
        eta1 = bar1.delays[:n] - rm
        eta2 = bar2.delays[:n] - rm
        worst = float(max(eta1.max(), eta2.max()))
        if worst > jitter_bound + 1e-9:
            raise EmulationInfeasibleError(
                f"Case 2 needs bar_d - Rm <= D but found {worst:.6f} > "
                f"{jitter_bound:.6f}", required_delay=worst)
        link_rate = 1000.0 * (pair.c1.link_rate + pair.c2.link_rate)
        initial_queue_delay = 0.0
        plan = EmulationPlan(
            times=times, d_star=np.full(n, rm), eta1=eta1, eta2=eta2,
            initial_queue_delay=0.0, link_rate=link_rate,
            c1=pair.c1.link_rate, c2=pair.c2.link_rate, rm=rm,
            slack=slack)

    # Step 3: run the two flows on the shared queue from their converged
    # states, with the planned jitter schedules.
    horizon = min(emulate_duration, float(plan.times[-1]))
    rate1_0 = float(traj1.shifted(pair.c1.t_converged).rates[0])
    rate2_0 = float(traj2.shifted(pair.c2.t_converged).rates[0])
    cca1 = cca_factory(rate1_0)
    cca2 = cca_factory(rate2_0)
    two_flow = run_shared_queue(
        [cca1, cca2], link_rate=link_rate, rm=rm,
        duration=horizon,
        etas=[plan.eta_function(0), plan.eta_function(1)],
        initial_queue_delay=initial_queue_delay, dt=dt)
    return StarvationConstruction(pair=pair, plan=plan, traj1=traj1,
                                  traj2=traj2, two_flow=two_flow,
                                  s_target=s, jitter_bound=jitter_bound,
                                  case=case)


@dataclass
class UnderutilizationConstruction:
    """Theorem 2's output: a fast link the CCA leaves almost idle."""

    small_rate: float
    big_rate: float
    trajectory: Trajectory        # single-flow run on the small link
    emulated: Trajectory          # run on the big link with emulated delay
    utilization: float
    jitter_bound: float

    @property
    def starved_factor(self) -> float:
        """How much capacity the CCA failed to use (C'/throughput)."""
        tput = self.emulated.throughput()
        return self.big_rate / tput if tput > 0 else math.inf


def construct_underutilization(cca_factory: Callable[[], object],
                               small_rate: float, rm: float,
                               jitter_bound: float,
                               big_rate_factor: float = 100.0,
                               duration: float = 30.0,
                               dt: float = 1e-3
                               ) -> UnderutilizationConstruction:
    """Theorem 2: emulate a slow link's delays on a fast link.

    Requires the CCA's queueing delay on the slow link to stay <= D
    (the theorem's d_max(C) <= D condition, with delays measured above
    Rm). The fast link's own queueing stays ~0 because the CCA sends at
    ~small_rate << big_rate; the jitter element supplies the remainder.
    """
    trajectory = run_ideal_path(cca_factory(), small_rate, rm, duration, dt)
    queueing = trajectory.delays - rm
    worst = float(queueing.max())
    if worst > jitter_bound + 1e-9:
        raise EmulationInfeasibleError(
            f"queueing delay on the small link reaches {worst:.6f} > "
            f"D={jitter_bound:.6f}; Theorem 2's premise fails",
            required_delay=worst)
    big_rate = small_rate * big_rate_factor
    delays = trajectory.delays
    dt_grid = trajectory.dt

    def eta(t: float) -> float:
        index = min(int(t / dt_grid), len(delays) - 1)
        return max(0.0, float(delays[index]) - rm)

    emulated = run_ideal_path(cca_factory(), big_rate, rm, duration, dt,
                              jitter=eta)
    utilization = emulated.throughput(duration / 2) / big_rate
    return UnderutilizationConstruction(
        small_rate=small_rate, big_rate=big_rate, trajectory=trajectory,
        emulated=emulated, utilization=utilization,
        jitter_bound=jitter_bound)


@dataclass
class StrongModelConstruction:
    """Theorem 3's output: consecutive traces with throughput ratio > s."""

    traces: List[Trajectory]
    chosen_index: int             # traces[i] vs traces[i+1] starve
    ratio: float
    jitter_bound: float
    s_target: float

    @property
    def starved(self) -> bool:
        return self.ratio >= self.s_target


def construct_strong_model_starvation(cca_factory: Callable[[], object],
                                      base_rate: float, rm: float,
                                      s: float,
                                      duration: float = 30.0,
                                      dt: float = 1e-3,
                                      max_steps: int = 64
                                      ) -> StrongModelConstruction:
    """Theorem 3: iterated delay-subtraction in the strong model.

    Trace 0 runs the CCA on an ideal link of rate ``base_rate``; D is set
    to the maximum queueing delay observed. Trace k+1 replays trace k's
    queueing delay minus D (clamped at 0) via the strong adversary. The
    throughputs of consecutive traces must eventually differ by a factor
    >= s (f-efficiency forces unbounded throughput once the delay trace
    hits zero); the first such pair is returned.
    """
    first = run_ideal_path(cca_factory(), base_rate, rm, duration, dt)
    jitter_bound = float((first.delays - rm).max())
    if jitter_bound <= 0:
        raise ConvergenceError("base trace has no queueing delay to subtract")
    traces = [first]
    # A link fast enough that its own queueing is negligible: the strong
    # adversary supplies all delay via eta.
    fast_rate = base_rate * 1e6
    current_delays = first.delays.copy()
    for step in range(max_steps):
        next_queueing = np.maximum(current_delays - rm - jitter_bound, 0.0)
        dt_grid = first.dt

        def eta(t: float, table=next_queueing) -> float:
            index = min(int(t / dt_grid), len(table) - 1)
            return float(table[index])

        trace = run_ideal_path(cca_factory(), fast_rate, rm, duration, dt,
                               jitter=eta)
        traces.append(trace)
        t_half = duration / 2
        previous = traces[-2].throughput(t_half)
        current = trace.throughput(t_half)
        if previous > 0 and (current / previous >= s
                             or (previous / max(current, 1e-12)) >= s):
            ratio = max(current / previous,
                        previous / max(current, 1e-12))
            return StrongModelConstruction(
                traces=traces, chosen_index=len(traces) - 2, ratio=ratio,
                jitter_bound=jitter_bound, s_target=s)
        if float(next_queueing.max()) <= 0:
            # Delay trace hit zero without a ratio jump: the CCA is not
            # f-efficient in the strong model for this horizon.
            break
        current_delays = rm + next_queueing
    raise ConvergenceError(
        "no consecutive-trace ratio >= s found within the horizon; "
        "lengthen the run or increase max_steps")
