"""Step 1 of Theorem 1: the pigeonhole pair of link rates (Figure 4).

For a delay-convergent CCA, all converged delays over rates above lambda
fall in ``[Rm, d_max_bound]``. Only finitely many disjoint intervals of
size epsilon fit there, but the geometric sequence of rates
``lambda * (s/f)^i`` is infinite — so some pair of rates at least a
factor ``s/f`` apart must land their converged d_max values in the same
epsilon-interval. That pair (C1, C2) is the seed of the starvation
construction: similar delays, wildly different rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import ConvergenceError
from .convergence import ConvergedRange


@dataclass
class PigeonholePair:
    """The found pair of link rates and their delay ranges."""

    c1: ConvergedRange
    c2: ConvergedRange
    epsilon: float
    bucket_index: int
    rates_probed: int

    @property
    def rate_ratio(self) -> float:
        return self.c2.link_rate / self.c1.link_rate

    def common_interval(self) -> Tuple[float, float]:
        """The smallest interval containing both delay ranges."""
        lo = min(self.c1.d_min, self.c2.d_min)
        hi = max(self.c1.d_max, self.c2.d_max)
        return (lo, hi)

    def common_width(self) -> float:
        lo, hi = self.common_interval()
        return hi - lo


def find_pigeonhole_pair(measure: Callable[[float], ConvergedRange],
                         lam: float, s: float, f: float,
                         epsilon: float, rm: float,
                         d_max_bound: float,
                         max_rates: int = 64) -> PigeonholePair:
    """Find C1, C2 = lambda*(s/f)^i, lambda*(s/f)^j with close d_max.

    Args:
        measure: maps a link rate to its measured :class:`ConvergedRange`
            (typically :func:`repro.core.convergence.measure_cca_range`
            partially applied with the CCA factory).
        lam: the rate floor above which Definition 1's bounds hold.
        s: target unfairness ratio.
        f: the CCA's efficiency constant.
        epsilon: bucket width for the pigeonhole argument.
        rm: propagation RTT (lower edge of the delay space).
        d_max_bound: upper edge of the delay space.
        max_rates: give up after probing this many rates (the theorem
            guarantees success for a truly delay-convergent CCA; a finite
            probe budget guards against CCAs that are not).

    Returns the first pair of probed rates whose d_max values land in the
    same epsilon bucket.
    """
    if s < 1 or not 0 < f <= 1:
        raise ValueError("need s >= 1 and 0 < f <= 1")
    if epsilon <= 0:
        raise ValueError("epsilon must be > 0")
    growth = max(s / f, 1.0 + 1e-9)
    buckets: Dict[int, ConvergedRange] = {}
    n_buckets = max(1, math.ceil((d_max_bound - rm) / epsilon))
    for i in range(max_rates):
        rate = lam * growth ** i
        measured = measure(rate)
        if measured.d_max > d_max_bound + 1e-12:
            raise ConvergenceError(
                f"d_max({rate:.3g}) = {measured.d_max:.6f} exceeds the "
                f"claimed bound {d_max_bound:.6f}; the CCA is not "
                f"delay-convergent with these parameters")
        index = min(int((measured.d_max - rm) / epsilon), n_buckets - 1)
        if index in buckets:
            return PigeonholePair(c1=buckets[index], c2=measured,
                                  epsilon=epsilon, bucket_index=index,
                                  rates_probed=i + 1)
        buckets[index] = measured
    raise ConvergenceError(
        f"no pigeonhole pair found in {max_rates} rates; "
        f"increase max_rates or epsilon")
