"""Rate-delay maps and the Section 6.3 figure of merit.

A delay-convergent CCA implicitly defines a map from equilibrium delay to
sending rate. The paper analyzes two families:

* the Vegas family, ``mu(d) = alpha / (d - Rm)`` (also BBR's cwnd-limited
  mode with ``d - 2 Rm``), whose supported rate range under an
  s-fairness constraint with jitter D is only O(Rmax / D)  (Equation 1);
* the exponential map of Equation 2,
  ``mu(d) = mu_minus * s ** ((Rmax - d) / D)``,
  whose range is O(s ** (Rmax / D)) — exponentially larger.

This module provides both maps, their closed-form equilibrium delay
curves (used to draw Figure 3 analytically next to the measured sweeps),
and the mu+/mu- figure-of-merit calculations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from ..errors import ConfigurationError


@dataclass
class VegasFamilyMap:
    """mu(d) = alpha / (d - offset), the Vegas/FAST/Copa/BBR-cwnd map.

    ``offset`` is Rm for Vegas/FAST/Copa and 2*Rm for BBR's cwnd-limited
    mode (Section 5.2's fixed-point analysis).
    """

    alpha: float            # bytes kept in the queue
    offset: float           # Rm (or 2*Rm for BBR)

    def rate(self, delay: float) -> float:
        queueing = delay - self.offset
        if queueing <= 0:
            return math.inf
        return self.alpha / queueing

    def delay(self, rate: float) -> float:
        """Inverse map: the equilibrium delay at a given link rate."""
        if rate <= 0:
            raise ConfigurationError("rate must be > 0")
        return self.offset + self.alpha / rate

    def mu_plus(self, jitter_bound: float, s: float) -> float:
        """Equation 1's maximum s-fair rate: alpha/D * (1 - 1/s)."""
        if s <= 1:
            raise ConfigurationError(f"s must be > 1, got {s}")
        return self.alpha / jitter_bound * (1 - 1 / s)

    def mu_minus(self, r_max: float) -> float:
        """Minimum rate: the rate whose delay is the tolerable maximum."""
        if r_max <= self.offset:
            raise ConfigurationError("r_max must exceed the map offset")
        return self.alpha / (r_max - self.offset)

    def figure_of_merit(self, jitter_bound: float, s: float,
                        r_max: float) -> float:
        """mu+/mu- = (r_max - offset)/D * (1 - 1/s)   (Equation 1)."""
        return self.mu_plus(jitter_bound, s) / self.mu_minus(r_max)


@dataclass
class ExponentialMap:
    """Equation 2: mu(d) = mu_minus * s ** ((r_max - d) / D)."""

    mu_minus: float
    s: float
    r_max: float            # maximum tolerable delay (absolute RTT)
    jitter_bound: float     # D
    rm: float               # propagation RTT

    def rate(self, delay: float) -> float:
        exponent = (self.r_max - delay) / self.jitter_bound
        return self.mu_minus * self.s ** exponent

    def delay(self, rate: float) -> float:
        """Inverse map (valid for rates in [mu-, mu+])."""
        if rate <= 0:
            raise ConfigurationError("rate must be > 0")
        return (self.r_max - self.jitter_bound
                * math.log(rate / self.mu_minus) / math.log(self.s))

    def mu_plus(self) -> float:
        """Rate at the minimum full-utilization delay Rm + D (Thm 2)."""
        return self.rate(self.rm + self.jitter_bound)

    def figure_of_merit(self) -> float:
        """mu+/mu- = s ** ((r_max - rm - D) / D)."""
        return self.mu_plus() / self.mu_minus


def compare_figures_of_merit(jitter_bound: float, s: float, r_max: float,
                             rm: float,
                             alpha: float = 4 * units.MSS) -> dict:
    """Worked Section 6.3 comparison for a given (D, s, Rmax, Rm).

    Returns both families' mu+/mu- plus the paper's closed forms, e.g.
    D = 10 ms, s = 2, Rmax = 100 ms gives ~2**10 ~ 1e3 for the
    exponential map.
    """
    vegas = VegasFamilyMap(alpha=alpha, offset=rm)
    exponential = ExponentialMap(mu_minus=vegas.mu_minus(r_max), s=s,
                                 r_max=r_max, jitter_bound=jitter_bound,
                                 rm=rm)
    return {
        "vegas_ratio": vegas.figure_of_merit(jitter_bound, s, r_max),
        "exponential_ratio": exponential.figure_of_merit(),
        "vegas_closed_form": (r_max - rm) / jitter_bound * (1 - 1 / s),
        "exponential_closed_form":
            s ** ((r_max - rm - jitter_bound) / jitter_bound),
    }


def bbr_cwnd_limited_delay(link_rate: float, rm: float, n_flows: int = 1,
                           quanta_packets: float = 3.0,
                           mss: int = units.MSS) -> float:
    """BBR cwnd-limited equilibrium RTT: 2*Rm + n*alpha/C (Section 5.2)."""
    return 2 * rm + n_flows * quanta_packets * mss / link_rate


def vegas_equilibrium_delay(link_rate: float, rm: float, n_flows: int = 1,
                            alpha_packets: float = 4.0,
                            mss: int = units.MSS) -> float:
    """Vegas/FAST equilibrium RTT: Rm + n*alpha/C."""
    return rm + n_flows * alpha_packets * mss / link_rate


def copa_delay_range(link_rate: float, rm: float, delta: float = 0.5,
                     mss: int = units.MSS) -> tuple:
    """Copa's equilibrium delay range: oscillates ~4 packets wide.

    Copa targets 1/(delta*dq), i.e. dq* = 1/(delta*C) in packet units;
    with its velocity oscillation the queue swings by roughly 4 packets
    (paper: delta(C) = 4*alpha/C with alpha the packet size).
    """
    dq_star = mss / (delta * link_rate)
    half_swing = 2 * mss / link_rate
    lo = rm + max(dq_star - half_swing, 0.0)
    hi = rm + dq_star + half_swing
    return (lo, hi)


def bbr_pacing_delay_range(rm: float) -> tuple:
    """BBR pacing-mode delay range: [Rm, 1.25*Rm] (delta = Rm/4)."""
    return (rm, 1.25 * rm)


def vivace_delay_range(rm: float) -> tuple:
    """PCC Vivace's range: [Rm, 1.05*Rm] (delta = Rm/20)."""
    return (rm, 1.05 * rm)
