"""Step 3 of Theorem 1: delay-trajectory emulation in a two-flow network.

Given the post-convergence single-flow trajectories ``bar_d1, bar_d2``
(delays) and ``bar_r1, bar_r2`` (rates) on ideal links of rates C1 and
C2, the construction runs both flows on one shared queue of rate C1+C2
and chooses per-flow non-congestive delays so each flow observes exactly
its single-flow delay trajectory — and therefore (determinism) sends at
exactly its single-flow rate. The shared delay follows Equation 5:

    d*(t) = (C1*bar_d1(t) + C2*bar_d2(t)) / (C1+C2) - (delta_max + eps)

and the per-flow jitter is ``eta_i(t) = bar_di(t) - d*(t)``, feasible
(0 <= eta <= D) exactly when D >= 2*(delta_max + eps) and both delay
trajectories stay within a common interval of width delta_max + eps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigurationError, EmulationInfeasibleError
from ..model.fluid import Trajectory


@dataclass
class EmulationPlan:
    """The constructed two-flow adversary.

    Attributes:
        times: shared time grid (starting at 0, the convergence origin).
        d_star: planned shared delay d*(t) (Rm + queueing delay).
        eta1 / eta2: per-flow non-congestive delay schedules.
        initial_queue_delay: d*(0) - Rm, the queue the adversary pre-fills.
        link_rate: C1 + C2.
        c1 / c2: the component link rates.
        rm: propagation RTT.
        slack: delta_max + eps used in Equation 5.
    """

    times: np.ndarray
    d_star: np.ndarray
    eta1: np.ndarray
    eta2: np.ndarray
    initial_queue_delay: float
    link_rate: float
    c1: float
    c2: float
    rm: float
    slack: float

    def eta_function(self, flow: int) -> Callable[[float], float]:
        """Continuous-time eta_i(t) by step interpolation of the grid."""
        etas = self.eta1 if flow == 0 else self.eta2
        times = self.times
        dt = times[1] - times[0] if len(times) > 1 else 1.0

        def eta(t: float) -> float:
            index = int(t / dt)
            if index < 0:
                index = 0
            if index >= len(etas):
                index = len(etas) - 1
            return float(etas[index])

        return eta

    @property
    def max_eta(self) -> float:
        return float(max(self.eta1.max(), self.eta2.max()))

    @property
    def min_eta(self) -> float:
        return float(min(self.eta1.min(), self.eta2.min()))


def check_feasible(plan: EmulationPlan, jitter_bound: float,
                   tolerance: float = 1e-9) -> None:
    """Raise :class:`EmulationInfeasibleError` unless 0 <= eta <= D."""
    for label, etas in (("flow 1", plan.eta1), ("flow 2", plan.eta2)):
        lowest = float(etas.min())
        highest = float(etas.max())
        if lowest < -tolerance:
            index = int(etas.argmin())
            raise EmulationInfeasibleError(
                f"{label} needs negative non-congestive delay "
                f"{lowest:.6g} at t={plan.times[index]:.4f}",
                time=float(plan.times[index]), required_delay=lowest)
        if highest > jitter_bound + tolerance:
            index = int(etas.argmax())
            raise EmulationInfeasibleError(
                f"{label} needs eta={highest:.6g} > D={jitter_bound:.6g} "
                f"at t={plan.times[index]:.4f}",
                time=float(plan.times[index]), required_delay=highest)
    if plan.initial_queue_delay < -tolerance:
        raise EmulationInfeasibleError(
            f"initial queue delay {plan.initial_queue_delay:.6g} < 0 "
            "(Case 1 of the proof requires d*(0) >= Rm)")


def build_emulation_plan(traj1: Trajectory, traj2: Trajectory,
                         t_conv1: float, t_conv2: float,
                         delta_max: float, epsilon: float,
                         jitter_bound: float) -> EmulationPlan:
    """Construct the Equation 5 adversary from two single-flow runs.

    Args:
        traj1 / traj2: ideal-path trajectories on links C1 and C2.
        t_conv1 / t_conv2: the flows' convergence times T1, T2.
        delta_max: the CCA's equilibrium-oscillation bound.
        epsilon: the pigeonhole bucket width (the proof's eps,
            typically D/2 - delta_max).
        jitter_bound: the network model's D; must exceed
            2*(delta_max + epsilon) up to rounding.

    Returns a feasible :class:`EmulationPlan` (raises
    :class:`EmulationInfeasibleError` otherwise).
    """
    if abs(traj1.dt - traj2.dt) > 1e-12:
        raise ConfigurationError("trajectories must share the same dt")
    if abs(traj1.rm - traj2.rm) > 1e-12:
        raise ConfigurationError("trajectories must share the same Rm")
    bar1 = traj1.shifted(t_conv1)
    bar2 = traj2.shifted(t_conv2)
    n = min(len(bar1.times), len(bar2.times))
    if n < 2:
        raise ConfigurationError("post-convergence overlap too short")
    times = bar1.times[:n]
    d1 = bar1.delays[:n]
    d2 = bar2.delays[:n]
    c1 = traj1.link_rate
    c2 = traj2.link_rate
    slack = delta_max + epsilon
    weighted = (c1 * d1 + c2 * d2) / (c1 + c2)
    d_star = weighted - slack
    eta1 = d1 - d_star
    eta2 = d2 - d_star
    plan = EmulationPlan(times=times, d_star=d_star, eta1=eta1, eta2=eta2,
                         initial_queue_delay=float(d_star[0] - traj1.rm),
                         link_rate=c1 + c2, c1=c1, c2=c2, rm=traj1.rm,
                         slack=slack)
    check_feasible(plan, jitter_bound)
    return plan


def verify_shared_delay(plan: EmulationPlan, traj1: Trajectory,
                        traj2: Trajectory, t_conv1: float, t_conv2: float,
                        tolerance: float = 1e-6) -> float:
    """Check Equation 3/5 consistency by integrating the shared queue.

    Integrates ``d*'(t) = (r1 + r2 - (C1+C2)) / (C1+C2)`` from the plan's
    initial condition using the recorded single-flow rates, and returns
    the maximum absolute deviation from the plan's closed-form d*(t).
    This is the proof's induction argument, done numerically.
    """
    bar1 = traj1.shifted(t_conv1)
    bar2 = traj2.shifted(t_conv2)
    n = len(plan.times)
    r_total = bar1.rates[:n] + bar2.rates[:n]
    dt = float(plan.times[1] - plan.times[0])
    c_total = plan.link_rate
    d = float(plan.d_star[0])
    worst = 0.0
    for i in range(n):
        worst = max(worst, abs(d - float(plan.d_star[i])))
        d += (float(r_total[i]) - c_total) / c_total * dt
        if d < plan.rm:
            d = plan.rm
    if worst > tolerance:
        raise EmulationInfeasibleError(
            f"integrated d* deviates from Equation 5 by {worst:.3g} "
            f"(> {tolerance:.3g}); the single-flow queues were not "
            "always non-empty (Case 1 assumption violated)")
    return worst
