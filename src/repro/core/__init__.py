"""The paper's primary contribution: delay-convergence, starvation theory.

Submodules:
    convergence — Definition 1 measurement/certification.
    fairness    — Definitions 2-4 (s-fairness, starvation, f-efficiency).
    pigeonhole  — Step 1 of Theorem 1 (Figure 4).
    emulation   — Step 3 of Theorem 1 (Equation 5 adversary).
    theorems    — end-to-end constructors for Theorems 1, 2, 3.
    ratedelay   — rate-delay maps and the Section 6.3 figure of merit.
"""

from .convergence import (ConvergedRange, ConvergenceCertificate,
                          certify_delay_convergence, find_convergence_time,
                          measure_cca_range, measure_converged_range)
from .emulation import (EmulationPlan, build_emulation_plan, check_feasible,
                        verify_shared_delay)
from .fairness import (EfficiencyVerdict, SFairnessVerdict,
                       check_f_efficiency, check_s_fairness, jain_index,
                       starvation_evidence, throughput_ratio)
from .pigeonhole import PigeonholePair, find_pigeonhole_pair
from .ratedelay import (ExponentialMap, VegasFamilyMap,
                        compare_figures_of_merit)
from .theorems import (StarvationConstruction, StrongModelConstruction,
                       UnderutilizationConstruction, construct_starvation,
                       construct_strong_model_starvation,
                       construct_underutilization)

__all__ = [
    "ConvergedRange", "ConvergenceCertificate", "EfficiencyVerdict",
    "EmulationPlan", "ExponentialMap", "PigeonholePair",
    "SFairnessVerdict", "StarvationConstruction",
    "StrongModelConstruction", "UnderutilizationConstruction",
    "VegasFamilyMap", "build_emulation_plan", "certify_delay_convergence",
    "check_f_efficiency", "check_feasible", "check_s_fairness",
    "compare_figures_of_merit", "construct_starvation",
    "construct_strong_model_starvation", "construct_underutilization",
    "find_convergence_time", "find_pigeonhole_pair", "jain_index",
    "measure_cca_range", "measure_converged_range", "starvation_evidence",
    "throughput_ratio", "verify_shared_delay",
]
