"""CUBIC: loss-based congestion control with cubic window growth.

On each loss, cwnd drops to ``beta x W_max``; afterwards the window grows
along ``W(t) = C (t - K)^3 + W_max`` with ``K = cbrt(W_max (1-beta)/C)``,
plateauing near the previous maximum before probing beyond it.

CUBIC is the second non-delay-convergent CCA in the paper's Figure 7:
with one receiver using 4-packet delayed ACKs, the bursty flow loses
more often and gets ~1/3 of the bandwidth — bounded unfairness, not
starvation, because the faster flow's cubic overshoot periodically
yields queue room.
"""

from __future__ import annotations

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND, SSTHRESH_INF

CUBE_SCALE = 0.4      # the "C" constant, packets/s^3
BETA = 0.7            # multiplicative decrease target


class Cubic(WindowCCA):
    """CUBIC window control (RFC 8312 shape, no TCP-friendly region).

    Args:
        cube_scale: the aggressiveness constant C.
        beta: post-loss window fraction.
        fast_convergence: release bandwidth faster when W_max shrinks.
    """

    def __init__(self, initial_cwnd: float = INITIAL_CWND,
                 cube_scale: float = CUBE_SCALE, beta: float = BETA,
                 fast_convergence: bool = True) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        self.cube_scale = cube_scale
        self.beta = beta
        self.fast_convergence = fast_convergence
        self.ssthresh = SSTHRESH_INF
        self.w_max = 0.0
        self._epoch_start: float = None
        self._k = 0.0
        self._recovery_until = -1

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _cubic_window(self, elapsed: float) -> float:
        return (self.cube_scale * (elapsed - self._k) ** 3 + self.w_max)

    def on_ack(self, info: AckInfo) -> None:
        acked_packets = info.acked_bytes / self.mss
        if self.in_slow_start:
            self.cwnd += acked_packets
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
            return
        if self._epoch_start is None:
            self._epoch_start = info.now
            if self.w_max < self.cwnd:
                self.w_max = self.cwnd
            self._k = ((self.w_max * (1 - self.beta) / self.cube_scale)
                       ** (1.0 / 3.0))
        target = self._cubic_window(info.now - self._epoch_start)
        if target > self.cwnd:
            # Standard CUBIC ramp: close the gap over one RTT.
            self.cwnd += (target - self.cwnd) * acked_packets / self.cwnd
        else:
            # Slow growth while under the cubic curve.
            self.cwnd += 0.01 * acked_packets
        self.clamp_cwnd()

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        if seq <= self._recovery_until:
            return
        self._recovery_until = self.sender.next_seq - 1
        if self.fast_convergence and self.cwnd < self.w_max:
            self.w_max = self.cwnd * (2 - self.beta) / 2
        else:
            self.w_max = self.cwnd
        self.cwnd *= self.beta
        self.clamp_cwnd()
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.cwnd * self.beta, 2.0)
        self.w_max = self.cwnd
        self.cwnd = 2.0
        self._epoch_start = None
        self._recovery_until = self.sender.next_seq - 1
