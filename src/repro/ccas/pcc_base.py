"""Shared machinery for the PCC family: monitor intervals (MIs).

PCC variants (Allegro, Vivace) send at a fixed rate during each monitor
interval, observe the fate of exactly the packets *sent during* that
interval, compute a utility from the resulting statistics (throughput,
loss rate, RTT gradient), and adjust the rate by comparing utilities.

Two timing details matter and are easy to get wrong:

* **Send-time attribution.** An MI's loss rate counts the losses of the
  packets sent during it, which are only known ~1 RTT later. Each MI
  stays open until all its packets are ACKed or declared lost (with a
  timeout backstop), and completed MIs are delivered to the controller
  in send order.
* **Planned rates.** Because results lag sending, the controller cannot
  set "the next MI's rate" when a result arrives — more MIs have already
  started. Instead each MI is *planned* when it begins via
  :meth:`plan_interval`, which returns ``(rate, tag)``; the controller
  recognizes its probe MIs by tag when their results arrive, and
  untagged gaps run at the base rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.packet import AckInfo
from .base import RateCCA


class MonitorStats:
    """Statistics for the packets sent during one monitor interval."""

    __slots__ = ("rate", "tag", "start", "end", "sent_packets",
                 "sent_bytes", "acked_packets", "acked_bytes", "losses",
                 "rtt_samples", "pending", "finalized")

    def __init__(self, rate: float, start: float, tag: str = "base") -> None:
        self.rate = rate
        self.tag = tag
        self.start = start
        self.end: Optional[float] = None
        self.sent_packets = 0
        self.sent_bytes = 0.0
        self.acked_packets = 0
        self.acked_bytes = 0.0
        self.losses = 0
        self.rtt_samples: List[Tuple[float, float]] = []
        self.pending = 0
        self.finalized = False

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def throughput(self) -> float:
        """Delivered rate in bytes/s for packets sent in this MI."""
        if self.duration <= 0:
            return 0.0
        return self.acked_bytes / self.duration

    def loss_rate(self) -> float:
        if self.sent_packets <= 0:
            return 0.0
        return self.losses / self.sent_packets

    def rtt_gradient(self) -> float:
        """Least-squares slope of RTT vs time (seconds per second)."""
        samples = self.rtt_samples
        n = len(samples)
        if n < 2:
            return 0.0
        mean_t = sum(t for t, _ in samples) / n
        mean_r = sum(r for _, r in samples) / n
        num = sum((t - mean_t) * (r - mean_r) for t, r in samples)
        den = sum((t - mean_t) ** 2 for t, _ in samples)
        if den <= 0:
            return 0.0
        return num / den

    def mean_rtt(self) -> float:
        if not self.rtt_samples:
            return float("nan")
        return sum(r for _, r in self.rtt_samples) / len(self.rtt_samples)


class MonitorIntervalCCA(RateCCA):
    """Base class: schedules MIs and feeds completed stats to subclasses.

    Subclasses implement :meth:`plan_interval` (rate and tag for the MI
    that is about to start) and :meth:`on_interval_done` (called with
    each finished :class:`MonitorStats` in send order).
    """

    def __init__(self, initial_rate: float, mi_rtt_multiplier: float = 1.7,
                 min_mi: float = 0.01,
                 finalize_grace_rtts: float = 4.0,
                 min_mi_packets: int = 0,
                 max_mi_extensions: int = 4) -> None:
        super().__init__(initial_rate=initial_rate)
        self.mi_rtt_multiplier = mi_rtt_multiplier
        self.min_mi = min_mi
        self.finalize_grace_rtts = finalize_grace_rtts
        self.min_mi_packets = min_mi_packets
        self.max_mi_extensions = max_mi_extensions
        self._extensions = 0
        self._current: Optional[MonitorStats] = None
        self._open: List[MonitorStats] = []   # closed but not yet finalized
        self._seq_to_mi: Dict[int, MonitorStats] = {}
        self._srtt: Optional[float] = None
        self.intervals_completed = 0

    def on_start(self) -> None:
        self._begin_interval()

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------

    def plan_interval(self) -> Tuple[float, str]:
        """Rate (bytes/s) and tag for the MI that is about to start."""
        return self.rate, "base"

    def on_interval_done(self, stats: MonitorStats) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # MI lifecycle
    # ------------------------------------------------------------------

    def _mi_duration(self) -> float:
        if self._srtt is None:
            return max(self.min_mi, 0.05)
        return max(self.min_mi, self.mi_rtt_multiplier * self._srtt)

    def _begin_interval(self) -> None:
        rate, tag = self.plan_interval()
        self.rate = rate
        self.clamp_rate()
        self._current = MonitorStats(self.rate, self.now, tag)
        self.sim.schedule(self._mi_duration(), self._close_interval)
        self.sender.kick()

    def _close_interval(self) -> None:
        stats = self._current
        assert stats is not None
        # Loss-rate estimates need enough packets to be meaningful at low
        # rates; extend the interval rather than decide on a tiny sample.
        if (stats.sent_packets < self.min_mi_packets
                and self._extensions < self.max_mi_extensions):
            self._extensions += 1
            self.sim.schedule(self._mi_duration(), self._close_interval)
            return
        self._extensions = 0
        stats.end = self.now
        self._open.append(stats)
        self._begin_interval()
        if stats.pending == 0:
            self._finalize_ready()
        else:
            grace = self.finalize_grace_rtts * (self._srtt or 0.1)
            self.sim.schedule(grace, self._force_finalize, stats)

    def _force_finalize(self, stats: MonitorStats) -> None:
        """Backstop: treat still-unresolved packets as lost."""
        if stats.finalized:
            return
        if stats.pending > 0:
            stats.losses += stats.pending
            stale = [seq for seq, mi in self._seq_to_mi.items()
                     if mi is stats]
            for seq in stale:
                del self._seq_to_mi[seq]
            stats.pending = 0
        self._finalize_ready()

    def _finalize_ready(self) -> None:
        """Deliver completed MIs to the subclass, preserving order."""
        while self._open and self._open[0].pending == 0:
            stats = self._open.pop(0)
            if stats.finalized:
                continue
            stats.finalized = True
            self.intervals_completed += 1
            self.on_interval_done(stats)

    # ------------------------------------------------------------------
    # Transport events
    # ------------------------------------------------------------------

    def on_send(self, now: float, seq: int, size: int,
                is_retransmit: bool) -> None:
        stats = self._current
        if stats is None:
            return
        stats.sent_packets += 1
        stats.sent_bytes += size
        stats.pending += 1
        self._seq_to_mi[seq] = stats

    def on_ack(self, info: AckInfo) -> None:
        if self._srtt is None:
            self._srtt = info.rtt
        else:
            self._srtt = 0.9 * self._srtt + 0.1 * info.rtt
        self.note_rtt(info.rtt)
        resolved = False
        for seq in info.acked_seqs:
            stats = self._seq_to_mi.pop(seq, None)
            if stats is None:
                continue
            stats.acked_packets += 1
            stats.acked_bytes += self.mss
            stats.pending -= 1
            stats.rtt_samples.append((info.now, info.rtt))
            resolved = True
        if resolved:
            self._finalize_ready()

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        stats = self._seq_to_mi.pop(seq, None)
        if stats is None:
            return
        stats.losses += 1
        stats.pending -= 1
        self._finalize_ready()
