"""Congestion control algorithm (CCA) interface for the packet simulator.

A CCA controls the sender through two knobs, read before every
transmission:

* ``cwnd_bytes`` — the window limit on bytes in flight (may be ``inf``
  for purely rate-based schemes);
* ``pacing_rate`` — bytes/s pacing (``None`` = ACK-clocked, no pacing).

The sender pushes events into the CCA: ``on_ack`` with an
:class:`~repro.sim.packet.AckInfo` digest (RTT sample, delivery-rate
sample, bytes acked), ``on_loss`` per lost packet, and ``on_timeout`` on
an RTO. ``attach`` is called once when the flow starts and gives the CCA
access to the sender (and through it, the simulator clock for timers).
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim.packet import AckInfo


class CCA:
    """Base class with sensible no-op defaults.

    Subclasses typically override ``on_ack`` and the two properties.
    ``self.sender`` is available after :meth:`attach`.
    """

    def __init__(self) -> None:
        self.sender = None

    # -- wiring --------------------------------------------------------

    def attach(self, sender) -> None:
        """Called by the sender when the flow starts."""
        self.sender = sender
        self.on_start()

    def on_start(self) -> None:
        """Hook for CCAs that need timers; runs once at flow start."""

    # -- convenience accessors ------------------------------------------

    @property
    def sim(self):
        return self.sender.sim

    @property
    def mss(self) -> int:
        return self.sender.mss

    @property
    def now(self) -> float:
        return self.sender.sim.now

    # -- events ----------------------------------------------------------

    def on_ack(self, info: AckInfo) -> None:
        """An ACK arrived; ``info`` digests the sample."""

    def on_send(self, now: float, seq: int, size: int,
                is_retransmit: bool) -> None:
        """A packet was handed to the network (PCC monitors use this).

        Must not change ``cwnd_bytes`` or ``pacing_rate``: the sender
        caches both across a same-instant send burst.
        """

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        """A packet was declared lost by gap detection."""

    def on_timeout(self, now: float) -> None:
        """The retransmission timeout fired."""

    # -- control outputs --------------------------------------------------

    @property
    def cwnd_bytes(self) -> float:
        return math.inf

    @property
    def pacing_rate(self) -> Optional[float]:
        return None


class WindowCCA(CCA):
    """Helper base for window-based CCAs keeping cwnd in packets.

    Maintains ``self.cwnd`` in packets (float); ``cwnd_bytes`` converts
    using the mss. A floor of ``min_cwnd`` packets is enforced.
    """

    def __init__(self, initial_cwnd: float = 4.0,
                 min_cwnd: float = 1.0) -> None:
        super().__init__()
        self.cwnd = initial_cwnd
        self.min_cwnd = min_cwnd

    def clamp_cwnd(self) -> None:
        if self.cwnd < self.min_cwnd:
            self.cwnd = self.min_cwnd

    @property
    def cwnd_bytes(self) -> float:
        return self.cwnd * self.mss if self.sender else self.cwnd * 1500


class RateCCA(CCA):
    """Helper base for rate-based CCAs (PCC family, Algorithm 1).

    Maintains ``self.rate`` in bytes/s used as the pacing rate; the
    window is a loose cap of ``cwnd_multiplier`` x rate x latest RTT so a
    rate-based sender cannot dump unbounded inflight when the network
    stalls.
    """

    def __init__(self, initial_rate: float, min_rate: float = 1500.0,
                 cwnd_multiplier: float = 50.0) -> None:
        super().__init__()
        self.rate = initial_rate
        self.min_rate = min_rate
        self.cwnd_multiplier = cwnd_multiplier
        self._latest_rtt: Optional[float] = None

    def note_rtt(self, rtt: float) -> None:
        self._latest_rtt = rtt

    def clamp_rate(self) -> None:
        if self.rate < self.min_rate:
            self.rate = self.min_rate

    @property
    def pacing_rate(self) -> Optional[float]:
        return self.rate

    @property
    def cwnd_bytes(self) -> float:
        if self._latest_rtt is None:
            return math.inf
        return max(4 * 1500.0,
                   self.cwnd_multiplier * self.rate * self._latest_rtt)
