"""Verus (simplified): delay-profile learning congestion control.

Verus (Zaki et al., SIGCOMM 2015) learns an empirical *delay profile*
— a mapping from congestion window to observed RTT — and each epoch
picks the window the profile predicts will produce its target delay.
The target itself moves AIMD-style with the delay trend. The paper
cites Verus in the delay-convergent family ("maximums of RTT" as its
filter, Section 1), so starvation applies to it as well.

This implementation keeps the structure that matters for the paper's
analysis:

* an epoch timer (~epoch_ms) driving window updates;
* a delay profile learned online as an EWMA per window bucket;
* the max-RTT-within-epoch filter Verus uses for its delay estimate;
* AIMD on the delay target between ``rm * min_target_mult`` and
  ``rm * max_target_mult``.

On an ideal path it converges to a bounded delay band around its target
(delay-convergent); under asymmetric jitter its profile is poisoned the
same way Vegas's min filter is.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND


class Verus(WindowCCA):
    """Simplified Verus.

    Args:
        epoch: epoch duration in seconds (window updates per epoch).
        delta_increase / delta_decrease: AIMD steps for the delay target
            (in multiples of the min RTT).
        min_target_mult / max_target_mult: clamp on the delay target as
            multiples of the min RTT.
        bucket_packets: delay-profile resolution, packets per bucket.
    """

    def __init__(self, epoch: float = 0.005,
                 delta_increase: float = 0.1,
                 delta_decrease: float = 0.2,
                 min_target_mult: float = 1.2,
                 max_target_mult: float = 4.0,
                 bucket_packets: float = 2.0,
                 initial_cwnd: float = INITIAL_CWND) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        self.epoch = epoch
        self.delta_increase = delta_increase
        self.delta_decrease = delta_decrease
        self.min_target_mult = min_target_mult
        self.max_target_mult = max_target_mult
        self.bucket_packets = bucket_packets

        self.min_rtt = math.inf
        self.target_mult = 2.0
        self._epoch_max_rtt = 0.0
        self._epoch_prev_max = 0.0
        # Delay profile: window bucket -> EWMA of observed RTT.
        self._profile: Dict[int, float] = {}
        self._in_slow_start = True

    def _bucket(self, cwnd: float) -> int:
        return int(cwnd / self.bucket_packets)

    def _learn(self, cwnd: float, rtt: float) -> None:
        bucket = self._bucket(cwnd)
        previous = self._profile.get(bucket)
        if previous is None:
            self._profile[bucket] = rtt
        else:
            self._profile[bucket] = 0.8 * previous + 0.2 * rtt

    def _window_for_delay(self, target_delay: float) -> Optional[float]:
        """Largest profiled window whose learned delay <= target."""
        best = None
        for bucket, delay in self._profile.items():
            if delay <= target_delay:
                if best is None or bucket > best:
                    best = bucket
        if best is None:
            return None
        return (best + 0.5) * self.bucket_packets

    def on_start(self) -> None:
        self._tick()

    def _tick(self) -> None:
        self._update_window()
        self.sender.kick()
        self.sim.schedule(self.epoch, self._tick)

    def _update_window(self) -> None:
        if not math.isfinite(self.min_rtt) or self._epoch_max_rtt <= 0:
            return
        epoch_delay = self._epoch_max_rtt     # Verus's max-RTT filter
        self._epoch_prev_max = self._epoch_max_rtt
        self._epoch_max_rtt = 0.0

        if self._in_slow_start:
            if epoch_delay > self.min_rtt * self.target_mult:
                self._in_slow_start = False
            else:
                self.cwnd *= 1.05
                return

        # AIMD on the delay target, tracking the delay trend.
        if epoch_delay > self.min_rtt * self.target_mult:
            self.target_mult = max(self.min_target_mult,
                                   self.target_mult - self.delta_decrease)
        else:
            self.target_mult = min(self.max_target_mult,
                                   self.target_mult + self.delta_increase)

        target_delay = self.min_rtt * self.target_mult
        window = self._window_for_delay(target_delay)
        if window is not None:
            # Move a fraction of the way to the profile's suggestion to
            # damp profile noise.
            self.cwnd += 0.3 * (window - self.cwnd)
        elif epoch_delay > target_delay:
            self.cwnd *= 0.9
        else:
            self.cwnd += 1.0
        self.clamp_cwnd()

    def on_ack(self, info: AckInfo) -> None:
        if info.rtt < self.min_rtt:
            self.min_rtt = info.rtt
        if info.rtt > self._epoch_max_rtt:
            self._epoch_max_rtt = info.rtt
        self._learn(self.cwnd, info.rtt)

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        self.cwnd *= 0.5
        self.clamp_cwnd()
        self._in_slow_start = False

    def on_timeout(self, now: float) -> None:
        self.cwnd = 2.0
        self._in_slow_start = True
