"""ECN-driven AIMD — the Section 6.4 conjecture, made executable.

The paper observes that delay and loss are *ambiguous* congestion
signals (non-congestive jitter and random loss mimic them), while an ECN
mark set by the bottleneck when its queue exceeds a threshold is
unambiguous. It conjectures that an AQM setting ECN bits, "coupled with
CCAs that ignore small amounts of loss, can prevent starvation".

:class:`EcnAimd` implements that CCA: NewReno-style slow start and
additive increase, multiplicative decrease once per window on an
ECN-echo — and *no* reaction to packet loss below a per-window tolerance
(lost packets are still retransmitted by the transport; they just do not
shrink the window). Under asymmetric random loss that starves PCC
Allegro, two EcnAimd flows keep sharing fairly, because the signal they
react to (queue-threshold marks) is identical for both.
"""

from __future__ import annotations

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND, SSTHRESH_INF


class EcnAimd(WindowCCA):
    """AIMD on ECN marks, loss-tolerant.

    Args:
        initial_cwnd: starting window, packets.
        md_factor: multiplicative decrease on an ECN round.
        loss_tolerance: fraction of a window's packets that may be lost
            per round without triggering a decrease. Losses above this
            (a buffer overflow burst, meaning the AQM is missing or
            overwhelmed) fall back to an AIMD cut, keeping the CCA safe
            on non-ECN paths.
    """

    def __init__(self, initial_cwnd: float = INITIAL_CWND,
                 md_factor: float = 0.5,
                 loss_tolerance: float = 0.1) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        self.md_factor = md_factor
        self.loss_tolerance = loss_tolerance
        self.ssthresh = SSTHRESH_INF
        self._recovery_until = -1
        self._window_losses = 0
        self._window_start_seq = 0
        self.ecn_responses = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def _maybe_cut(self, seq_now: int) -> None:
        if seq_now <= self._recovery_until:
            return
        self._recovery_until = self.sender.next_seq - 1
        self.cwnd *= self.md_factor
        self.clamp_cwnd()
        self.ssthresh = self.cwnd

    def on_ack(self, info: AckInfo) -> None:
        acked_packets = info.acked_bytes / self.mss
        if info.ecn_marked:
            # Exit slow start and cut once per window on marks.
            self.ssthresh = min(self.ssthresh, self.cwnd)
            self.ecn_responses += 1
            self._maybe_cut(max(info.acked_seqs, default=0))
            return
        if self.in_slow_start:
            self.cwnd += acked_packets
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += acked_packets / self.cwnd
        # Reset the per-round loss counter once per window of seqs.
        if self.sender.highest_acked >= self._window_start_seq:
            self._window_start_seq = self.sender.next_seq
            self._window_losses = 0

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        self._window_losses += 1
        tolerated = max(self.loss_tolerance * self.cwnd, 1.0)
        if self._window_losses > tolerated:
            # Persistent heavy loss: the path is not protecting us with
            # ECN; behave like Reno for safety.
            self._maybe_cut(seq)

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.cwnd * self.md_factor, 2.0)
        self.cwnd = 2.0
        self._recovery_until = self.sender.next_seq - 1
