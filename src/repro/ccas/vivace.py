"""PCC Vivace: online-learning rate control with a latency-aware utility.

Utility per monitor interval (Dong et al., NSDI 2018):

    u(r) = T^0.9 - b * T * max(0, dRTT/dt) - c * T * L

with T the achieved throughput in Mbit/s, dRTT/dt the RTT gradient over
the interval, L the loss rate, b = 900, c = 11.35.

Control: after slow start (rate doubling while utility keeps rising),
Vivace alternates paired probe intervals at r(1+eps) and r(1-eps),
estimates the utility gradient, and takes a confidence-amplified gradient
step bounded by a dynamic change limit (omega). Probe intervals are
planned by tag (see :mod:`repro.ccas.pcc_base`), so the controller is
robust to the ~1-RTT lag between sending an MI and learning its utility.

Relevance to the paper (Section 5.3): on an ideal link Vivace converges
to RTT oscillating within [Rm, 1.05 Rm] (delta_max = Rm/20, Figure 3).
ACK aggregation that quantizes feedback to 60 ms boundaries injects
spurious positive RTT gradients for one flow, whose utility then always
looks better at lower rates — it starves at ~1/10th of its share.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .. import units
from .pcc_base import MonitorIntervalCCA, MonitorStats

EPSILON = 0.05          # probe amplitude
THETA0 = 1.0            # base gradient step, Mbit/s per utility-gradient unit
OMEGA0 = 0.05           # initial rate-change bound (fraction of rate)
OMEGA_STEP = 0.05       # bound growth per consistent step
OMEGA_MAX = 0.25


class Vivace(MonitorIntervalCCA):
    """PCC Vivace with the default latency utility.

    Args:
        initial_rate: starting rate, bytes/s.
        b: latency-gradient penalty coefficient.
        c: loss penalty coefficient.
        throughput_exponent: exponent on throughput in the utility (0.9).
    """

    def __init__(self, initial_rate: float = units.mbps(1.0),
                 b: float = 900.0, c: float = 11.35,
                 throughput_exponent: float = 0.9) -> None:
        super().__init__(initial_rate=initial_rate)
        self.b = b
        self.c = c
        self.throughput_exponent = throughput_exponent

        self.base_rate = initial_rate
        self.in_slow_start = True
        self._best_ss_utility: Optional[float] = None
        self._plan: Deque[Tuple[float, str]] = deque()
        self._probe_up_utility: Optional[float] = None
        self._consistent_steps = 0
        self._last_direction = 0
        self._omega = OMEGA0

    # -- utility ---------------------------------------------------------

    def utility(self, stats: MonitorStats) -> float:
        """Vivace's latency-gradient utility for one interval."""
        throughput_mbps = units.to_mbps(stats.throughput())
        gradient = max(0.0, stats.rtt_gradient())
        loss = stats.loss_rate()
        return (throughput_mbps ** self.throughput_exponent
                - self.b * throughput_mbps * gradient
                - self.c * throughput_mbps * loss)

    # -- MI planning -------------------------------------------------------

    def plan_interval(self) -> Tuple[float, str]:
        if self._plan:
            return self._plan.popleft()
        return self.base_rate, "base"

    def _enqueue_probe_pair(self) -> None:
        self._plan.append((self.base_rate * (1 + EPSILON), "up"))
        self._plan.append((self.base_rate * (1 - EPSILON), "down"))

    # -- controller ---------------------------------------------------------

    def on_interval_done(self, stats: MonitorStats) -> None:
        utility = self.utility(stats)
        if self.in_slow_start:
            # Only compare MIs sent at the current base rate; MIs sent at
            # stale rates during the feedback lag are ignored.
            if stats.rate < self.base_rate * 0.99:
                return
            if (self._best_ss_utility is None
                    or utility > self._best_ss_utility):
                self._best_ss_utility = utility
                self.base_rate = stats.rate * 2.0
            else:
                # Utility stopped rising: settle at the last good rate.
                self.in_slow_start = False
                self.base_rate = stats.rate / 2.0
                self._plan.clear()
                self._enqueue_probe_pair()
            return

        if stats.tag == "up":
            self._probe_up_utility = utility
        elif stats.tag == "down":
            utility_up = self._probe_up_utility
            self._probe_up_utility = None
            if utility_up is not None:
                self._take_gradient_step(utility_up, utility)
                self._enqueue_probe_pair()

    def _take_gradient_step(self, utility_up: float,
                            utility_down: float) -> None:
        base_mbps = units.to_mbps(self.base_rate)
        denom = 2 * EPSILON * max(base_mbps, 1e-6)
        gradient = (utility_up - utility_down) / denom
        direction = 1 if gradient > 0 else -1
        if direction == self._last_direction:
            self._consistent_steps += 1
            self._omega = min(OMEGA_MAX, self._omega + OMEGA_STEP)
        else:
            self._consistent_steps = 0
            self._omega = OMEGA0
        self._last_direction = direction

        amplification = 1.0 + self._consistent_steps
        change_mbps = THETA0 * amplification * gradient
        bound_mbps = self._omega * max(base_mbps, 0.5)
        change_mbps = max(-bound_mbps, min(bound_mbps, change_mbps))
        self.base_rate = units.mbps(max(0.05, base_mbps + change_mbps))
