"""Congestion control algorithms for the packet-level simulator.

Delay-convergent CCAs studied by the paper: :class:`Vegas`,
:class:`FastTCP`, :class:`Copa`, :class:`BBR`, :class:`Vivace`,
:class:`Ledbat`, and the paper's own :class:`JitterAware` (Algorithm 1).
Loss-based (non-delay-convergent) baselines: :class:`NewReno`,
:class:`Cubic`, :class:`Allegro`.
"""

from .allegro import Allegro
from .base import CCA, RateCCA, WindowCCA
from .bbr import BBR
from .copa import Copa
from .cubic import Cubic
from .delay_aimd import DelayAimd
from .ecn import EcnAimd
from .fast import FastTCP
from .jitteraware import JitterAware
from .ledbat import Ledbat
from .reno import NewReno
from .vegas import Vegas
from .verus import Verus
from .vivace import Vivace
from .windowtarget import WindowTarget

#: All delay-convergent CCAs (subject to Theorem 1).
DELAY_CONVERGENT = (Vegas, FastTCP, Copa, BBR, Vivace, Ledbat,
                    JitterAware, Verus)

#: Loss-based CCAs (Section 5.4 analysis).
LOSS_BASED = (NewReno, Cubic, Allegro)

#: Explicit-signal CCA (Section 6.4 conjecture).
EXPLICIT_SIGNAL = (EcnAimd,)

#: Large-oscillation delay CCA (Section 6.2 conjecture).
LARGE_OSCILLATION = (DelayAimd,)

__all__ = [
    "Allegro", "BBR", "CCA", "Copa", "Cubic", "DELAY_CONVERGENT",
    "DelayAimd", "EXPLICIT_SIGNAL", "EcnAimd", "FastTCP", "JitterAware",
    "LARGE_OSCILLATION", "LOSS_BASED", "Ledbat", "NewReno", "RateCCA",
    "Vegas", "Verus", "Vivace", "WindowCCA", "WindowTarget",
]
