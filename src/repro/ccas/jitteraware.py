"""Algorithm 1 from the paper (Section 6.3): a jitter-aware CCA.

The paper proposes designing *for* a known jitter bound D by using the
exponential rate-delay map of Equation 2:

    mu(d) = mu_minus * s ** ((Rmax - (d - Rm)) / D)

which assigns every factor-of-s rate band a delay band wider than D, so
flows whose delay measurements disagree by up to D can still never infer
rates more than a factor s apart. The control loop (run every Rm) is
AIMD on the *rate*:

    if mu < mu(d):  mu <- mu + a          (additive increase)
    else:           mu <- b * mu          (multiplicative decrease)

The paper notes AIMD (not AIAD) matters for fairness under measurement
ambiguity, and that the step must be per-RTT, independent of ACK count.

This is the paper's illustration of "choose two of three, unless you
design for D": with jitter <= D the algorithm is s-fair and efficient,
at the cost of keeping delay between Rm + D and Rmax.
"""

from __future__ import annotations

import math
from typing import Optional

from .. import units
from ..sim.packet import AckInfo
from .base import RateCCA


class JitterAware(RateCCA):
    """The paper's Algorithm 1.

    Args:
        jitter_bound: the designed-for jitter bound D, seconds.
        s: tolerated unfairness ratio (> 1).
        rmax: maximum tolerable *queueing* delay above Rm, seconds
            (the paper's Rmax with the d - Rm convention of Algorithm 1).
        mu_minus: minimum supported rate, bytes/s.
        additive_step: the increase ``a`` in bytes/s per Rm.
        md_factor: the decrease factor ``b`` in (0, 1).
        rm: optional Rm oracle; None = min-RTT estimator. Because the
            rate map only needs delay *relative* to Rm + D, a min-RTT
            error of up to D shifts the map by less than one s-band,
            preserving s'-fairness for a slightly larger s'.
    """

    def __init__(self, jitter_bound: float, s: float = 2.0,
                 rmax: float = 0.2, mu_minus: float = units.kbps(100),
                 additive_step: Optional[float] = None,
                 md_factor: float = 0.9,
                 rm: Optional[float] = None,
                 decrease_mode: str = "multiplicative") -> None:
        super().__init__(initial_rate=mu_minus)
        if jitter_bound <= 0:
            raise ValueError("jitter_bound must be > 0")
        if s <= 1:
            raise ValueError(f"s must be > 1, got {s}")
        if not 0 < md_factor < 1:
            raise ValueError(f"md_factor must be in (0,1), got {md_factor}")
        if decrease_mode not in ("multiplicative", "additive"):
            raise ValueError("decrease_mode must be 'multiplicative' or "
                             f"'additive', got {decrease_mode!r}")
        # The paper (6.3) chose AIMD over the AIAD of Vegas/Copa because
        # "the fairness properties of AIMD are critical in the presence
        # of measurement ambiguity"; the additive mode exists so the
        # ablation bench can demonstrate exactly that.
        self.decrease_mode = decrease_mode
        self.jitter_bound = jitter_bound
        self.s = s
        self.rmax = rmax
        self.mu_minus = mu_minus
        self.additive_step = (additive_step if additive_step is not None
                              else mu_minus / 2)
        self.md_factor = md_factor
        self.rm_oracle = rm
        self._min_rtt = rm if rm is not None else math.inf
        self._latest = math.inf
        self.min_rate = mu_minus * self.md_factor

    def target_rate(self, rtt: float) -> float:
        """Equation 2 evaluated at the measured RTT."""
        rm = self._min_rtt if math.isfinite(self._min_rtt) else rtt
        queueing = max(0.0, rtt - rm)
        exponent = (self.rmax - queueing) / self.jitter_bound
        return self.mu_minus * self.s ** exponent

    def on_start(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if math.isfinite(self._latest):
            if self.rate < self.target_rate(self._latest):
                self.rate += self.additive_step
            elif self.decrease_mode == "multiplicative":
                self.rate *= self.md_factor
            else:
                self.rate -= self.additive_step
            self.clamp_rate()
            self.sender.kick()
        interval = (self._min_rtt if math.isfinite(self._min_rtt)
                    else 0.05)
        self.sim.schedule(max(interval, 1e-3), self._tick)

    def on_ack(self, info: AckInfo) -> None:
        self.note_rtt(info.rtt)
        self._latest = info.rtt
        if self.rm_oracle is None and info.rtt < self._min_rtt:
            self._min_rtt = info.rtt

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        # Algorithm 1 as published has no loss path; back off defensively
        # so short buffers do not collapse the experiment.
        self.rate *= self.md_factor
        self.clamp_rate()

    def on_timeout(self, now: float) -> None:
        self.rate = max(self.min_rate, self.rate * 0.5)
