"""Name-based CCA registry: the bridge from declarative specs to code.

:class:`~repro.spec.scenario.CCASpec` (and the CLI's flow-spec strings)
name CCAs by string; this module resolves those names to constructors.
Keeping the mapping here — instead of ad-hoc dicts in the CLI and each
benchmark — gives every consumer the same catalog and lets serialized
scenarios cross process boundaries: a worker process rebuilds the CCA
from ``(name, kwargs)`` without ever pickling a closure.

Registered names (see the table at the bottom of the module):
``vegas``, ``fast``, ``copa``, ``bbr``, ``vivace``, ``allegro``,
``reno``, ``cubic``, ``ledbat``, ``jitter-aware`` (the paper's
Algorithm 1), plus the extension CCAs ``delay-aimd``, ``ecn-aimd``,
``verus``.

Seeding: entries whose constructor accepts a ``seed`` argument are
flagged ``seeded``; :func:`create` injects a caller-provided seed into
those unless the kwargs already pin one explicitly. This is how a
:class:`~repro.spec.scenario.ScenarioSpec` root seed reaches BBR's
probe-phase RNG and Allegro's RCT order deterministically.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .. import units
from ..errors import ConfigurationError
from .allegro import Allegro
from .bbr import BBR
from .copa import Copa
from .cubic import Cubic
from .delay_aimd import DelayAimd
from .ecn import EcnAimd
from .fast import FastTCP
from .jitteraware import JitterAware
from .ledbat import Ledbat
from .reno import NewReno
from .vegas import Vegas
from .verus import Verus
from .vivace import Vivace


@dataclass(frozen=True)
class CCAEntry:
    """One registry row: a constructor plus metadata for spec building."""

    name: str
    factory: Callable[..., object]
    #: True when the constructor accepts a ``seed`` kwarg.
    seeded: bool
    #: Default kwargs merged under caller kwargs (e.g. Algorithm 1's
    #: required ``jitter_bound``).
    defaults: Dict[str, Any] = field(default_factory=dict)
    doc: str = ""


_REGISTRY: Dict[str, CCAEntry] = {}


def register(name: str, factory: Callable[..., object],
             defaults: Optional[Dict[str, Any]] = None,
             seeded: Optional[bool] = None, doc: str = "") -> None:
    """Register ``factory`` under ``name`` (detects ``seed`` support)."""
    if name in _REGISTRY:
        raise ConfigurationError(f"CCA {name!r} is already registered")
    if seeded is None:
        try:
            params = inspect.signature(factory).parameters
            seeded = "seed" in params
        except (TypeError, ValueError):  # builtins without signatures
            seeded = False
    _REGISTRY[name] = CCAEntry(name=name, factory=factory, seeded=seeded,
                               defaults=dict(defaults or {}), doc=doc)


def entry(name: str) -> CCAEntry:
    """Look up a registry entry, with a helpful error for bad names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown CCA {name!r}; registered: {', '.join(names())}")


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def names() -> List[str]:
    """All registered CCA names, sorted."""
    return sorted(_REGISTRY)


def create(name: str, params: Optional[Dict[str, Any]] = None,
           seed: Optional[int] = None) -> object:
    """Instantiate the CCA ``name`` with ``params`` kwargs.

    ``seed`` is injected into seeded entries unless ``params`` already
    pins one — an explicit ``{"seed": ...}`` in a spec always wins over
    the derived scenario seed.
    """
    reg = entry(name)
    kwargs = dict(reg.defaults)
    kwargs.update(params or {})
    if reg.seeded and seed is not None and "seed" not in kwargs:
        kwargs["seed"] = seed
    try:
        return reg.factory(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad params for CCA {name!r}: {exc}")


register("vegas", Vegas, doc="TCP Vegas (delay-convergent archetype)")
register("fast", FastTCP, doc="FAST TCP")
register("copa", Copa, doc="Copa (NSDI 2018) in default mode")
register("bbr", BBR, doc="BBR v1 (seeded PROBE_BW phase)")
register("vivace", Vivace, doc="PCC Vivace (gradient utility)")
register("allegro", Allegro, doc="PCC Allegro (seeded RCT order)")
register("reno", NewReno, doc="TCP NewReno (loss-based baseline)")
register("cubic", Cubic, doc="TCP Cubic (loss-based baseline)")
register("ledbat", Ledbat, doc="LEDBAT scavenger (RFC 6817)")
register("jitter-aware", JitterAware,
         defaults={"jitter_bound": units.ms(10)},
         doc="the paper's Algorithm 1 (jitter-resilient by design)")
register("delay-aimd", DelayAimd, doc="Section 6.2 AIMD-on-delay")
register("ecn-aimd", EcnAimd, doc="Section 6.4 ECN-signal AIMD")
register("verus", Verus, doc="Verus (delay-profile)")
