"""BBR (v1-style): model-based control from max-bandwidth / min-RTT filters.

Implements the structure the paper analyzes in Section 5.2:

* **Pacing mode** — pacing_rate = pacing_gain x bandwidth_estimate, with
  the PROBE_BW gain cycle [1.25, 0.75, 1, 1, 1, 1, 1, 1] (one phase per
  min-RTT). Here d_min = Rm, d_max = 1.25 Rm, so delta_max = 0.25 Rm.
* **cwnd-limited mode** — cwnd = 2 x bandwidth_estimate x min_rtt +
  quanta. When ACKs arrive in bursts the max filter overestimates the
  bandwidth, pacing stops binding, and the +quanta term alone creates the
  fixed point rate = quanta / (RTT - 2 Rm) (paper Section 5.2).

The bandwidth estimate is a windowed max (10 rounds) of delivery-rate
samples; min_rtt is a windowed min (10 s) refreshed by PROBE_RTT (cwnd
drops to 4 packets for 200 ms). STARTUP/DRAIN follow the usual 2/ln 2
gain and full-pipe detection (three rounds without 25% growth).

Randomized PROBE_BW phase offsets take a seed so experiments stay
reproducible.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Optional, Tuple

from ..sim.packet import AckInfo
from .base import CCA

STARTUP_GAIN = 2.885  # 2/ln(2)
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BW_WINDOW_ROUNDS = 10
MIN_RTT_WINDOW = 10.0
PROBE_RTT_DURATION = 0.2
PROBE_RTT_CWND_PACKETS = 4


class BBR(CCA):
    """Simplified BBR v1.

    Args:
        quanta_packets: the paper's alpha term added to cwnd (BBR draft's
            "quanta"); setting it to 0 reproduces the degenerate
            any-split fixed point discussed in Section 5.2.
        cwnd_gain: multiplier on BDP for the cwnd cap (2 in BBR v1).
        seed: randomizes the initial PROBE_BW phase (flow
            desynchronization). Any int replays the exact same phase
            sequence; ``None`` draws OS entropy and makes the run
            irreproducible (never the default — scenario specs derive a
            per-flow seed from the root seed instead, see
            :mod:`repro.spec.seeds`).
        enable_probe_rtt: disable to model senders with oracular Rm.
    """

    STARTUP, DRAIN, PROBE_BW, PROBE_RTT = range(4)

    def __init__(self, quanta_packets: float = 3.0, cwnd_gain: float = 2.0,
                 seed: Optional[int] = 0,
                 enable_probe_rtt: bool = True) -> None:
        super().__init__()
        self.quanta_packets = quanta_packets
        self.cwnd_gain = cwnd_gain
        self.enable_probe_rtt = enable_probe_rtt
        self._rng = random.Random(seed)

        self.mode = BBR.STARTUP
        self.pacing_gain = STARTUP_GAIN
        self._cwnd_gain_now = STARTUP_GAIN

        # Windowed max filter: (round, max sample in that round).
        self._bw_samples: Deque[Tuple[int, float]] = deque()
        self.btl_bw: float = 0.0

        # Windowed min filter over wall-clock for min RTT.
        self._rtt_samples: Deque[Tuple[float, float]] = deque()
        self.min_rtt_est: float = math.inf

        self.round_count = 0
        self._next_round_delivered = 0.0
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self.filled_pipe = False

        self._cycle_index = 0
        self._cycle_stamp = 0.0

        self._probe_rtt_done_time: Optional[float] = None
        self._min_rtt_stamp = 0.0

    # ------------------------------------------------------------------
    # Filters
    # ------------------------------------------------------------------

    def _update_round(self, info: AckInfo) -> None:
        if info.delivered_at_send >= self._next_round_delivered:
            self.round_count += 1
            self._next_round_delivered = info.delivered_bytes

    def _update_bw(self, info: AckInfo) -> None:
        sample = info.delivery_rate
        if sample is None or sample <= 0:
            return
        samples = self._bw_samples
        if samples and samples[-1][0] == self.round_count:
            if sample > samples[-1][1]:
                samples[-1] = (self.round_count, sample)
        else:
            samples.append((self.round_count, sample))
        horizon = self.round_count - BW_WINDOW_ROUNDS
        while samples and samples[0][0] < horizon:
            samples.popleft()
        self.btl_bw = max(bw for _, bw in samples)

    def _update_min_rtt(self, info: AckInfo) -> None:
        # Monotonic deque: O(1) amortized sliding-window minimum.
        samples = self._rtt_samples
        while samples and samples[-1][1] >= info.rtt:
            samples.pop()
        samples.append((info.now, info.rtt))
        while samples and samples[0][0] < info.now - MIN_RTT_WINDOW:
            samples.popleft()
        new_min = samples[0][1]
        # The RTprop timestamp refreshes only when a fresh *sample* matches
        # or improves the estimate (BBR's rtprop_stamp); otherwise the
        # estimate is stale and PROBE_RTT must eventually fire.
        if (info.rtt <= self.min_rtt_est
                or not math.isfinite(self.min_rtt_est)):
            self._min_rtt_stamp = info.now
        self.min_rtt_est = new_min

    # ------------------------------------------------------------------
    # Mode machine
    # ------------------------------------------------------------------

    def _check_full_pipe(self) -> None:
        if self.filled_pipe:
            return
        if self.btl_bw >= self._full_bw * 1.25:
            self._full_bw = self.btl_bw
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= 3:
            self.filled_pipe = True

    def _bdp_bytes(self, gain: float = 1.0) -> float:
        if not math.isfinite(self.min_rtt_est) or self.btl_bw <= 0:
            return math.inf
        return gain * self.btl_bw * self.min_rtt_est

    def _advance_cycle(self, now: float) -> None:
        if now - self._cycle_stamp > max(self.min_rtt_est, 1e-3):
            self._cycle_index = (self._cycle_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_stamp = now
            self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def on_ack(self, info: AckInfo) -> None:
        now = info.now
        self._update_round(info)
        self._update_bw(info)
        self._update_min_rtt(info)
        if self.mode == BBR.STARTUP:
            self._check_full_pipe()
            if self.filled_pipe:
                self.mode = BBR.DRAIN
                self.pacing_gain = 1.0 / STARTUP_GAIN
                self._cwnd_gain_now = self.cwnd_gain
        if self.mode == BBR.DRAIN:
            if info.inflight_bytes <= self._bdp_bytes(1.0):
                self._enter_probe_bw(now)
        if self.mode == BBR.PROBE_BW:
            self._advance_cycle(now)
        self._maybe_probe_rtt(now, info)

    def _enter_probe_bw(self, now: float) -> None:
        self.mode = BBR.PROBE_BW
        self._cwnd_gain_now = self.cwnd_gain
        # Random initial phase (not the 1.25 probe), per BBR v1.
        self._cycle_index = self._rng.randrange(1, len(PROBE_BW_GAINS))
        self._cycle_stamp = now
        self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]

    def _maybe_probe_rtt(self, now: float, info: AckInfo) -> None:
        if not self.enable_probe_rtt:
            return
        if (self.mode != BBR.PROBE_RTT
                and now - self._min_rtt_stamp > MIN_RTT_WINDOW
                and self.filled_pipe):
            self.mode = BBR.PROBE_RTT
            self.pacing_gain = 1.0
            self._probe_rtt_done_time = now + PROBE_RTT_DURATION
        elif self.mode == BBR.PROBE_RTT:
            if now >= (self._probe_rtt_done_time or 0.0):
                self._min_rtt_stamp = now
                self._enter_probe_bw(now)

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        # BBR v1 mostly ignores individual losses (no MD).
        pass

    def on_timeout(self, now: float) -> None:
        # Conservative restart: forget the bandwidth estimate.
        self._bw_samples.clear()
        self.btl_bw = 0.0
        self.filled_pipe = False
        self.mode = BBR.STARTUP
        self.pacing_gain = STARTUP_GAIN
        self._full_bw = 0.0
        self._full_bw_rounds = 0

    # ------------------------------------------------------------------
    # Control outputs
    # ------------------------------------------------------------------

    @property
    def pacing_rate(self) -> Optional[float]:
        if self.btl_bw <= 0:
            # No estimate yet: pace at a default of 10 packets per RTT
            # guess (effectively unpaced early startup).
            return None
        return self.pacing_gain * self.btl_bw

    @property
    def cwnd_bytes(self) -> float:
        mss = self.mss if self.sender else 1500
        if self.mode == BBR.PROBE_RTT:
            return PROBE_RTT_CWND_PACKETS * mss
        bdp = self._bdp_bytes(self._cwnd_gain_now)
        if not math.isfinite(bdp):
            return 10 * mss  # startup default before first estimate
        return bdp + self.quanta_packets * mss
