"""TCP Vegas: keep ``alpha``..``beta`` packets queued at the bottleneck.

Vegas is the archetypal delay-convergent CCA (paper Section 2.2 and 5.1):
on an ideal path it converges to RTT = Rm + n*alpha/C with *zero*
equilibrium oscillation (delta(C) = 0), which is exactly what makes it
maximally vulnerable to non-congestive jitter — a sub-millisecond error
in queueing-delay estimation changes its inferred rate by 10x.

The implementation follows Brakmo & Peterson's per-RTT control: once per
RTT compute ``diff = cwnd * (rtt - base_rtt) / rtt`` (the estimated number
of our packets sitting in the queue); increase cwnd by one packet when
``diff < alpha``, decrease by one when ``diff > beta``, hold otherwise.
"""

from __future__ import annotations

import math

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND, SSTHRESH_INF


class Vegas(WindowCCA):
    """Classic Vegas with slow start and alpha/beta band control.

    Args:
        alpha: lower bound on queued packets (increase below this).
        beta: upper bound on queued packets (decrease above this).
        base_rtt: optional oracle for Rm; when None (default) Vegas
            estimates it as the minimum observed RTT, which is exactly
            the estimator the paper's Section 5.1 attack poisons.
    """

    def __init__(self, alpha: float = 2.0, beta: float = 4.0,
                 initial_cwnd: float = INITIAL_CWND,
                 base_rtt: float = None) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        if alpha > beta:
            raise ValueError(f"alpha ({alpha}) must be <= beta ({beta})")
        self.alpha = alpha
        self.beta = beta
        self.base_rtt_oracle = base_rtt
        self.base_rtt = base_rtt if base_rtt is not None else math.inf
        self.ssthresh = SSTHRESH_INF
        self._epoch_end_seq = 0
        self._in_slow_start = True

    def on_ack(self, info: AckInfo) -> None:
        if self.base_rtt_oracle is None and info.rtt < self.base_rtt:
            self.base_rtt = info.rtt
        if info.rtt <= 0 or not math.isfinite(self.base_rtt):
            return

        queued = self.cwnd * (info.rtt - self.base_rtt) / info.rtt

        if self._in_slow_start:
            # Vegas leaves slow start when it detects queue build-up.
            if queued > self.beta or self.cwnd >= self.ssthresh:
                self._in_slow_start = False
            else:
                self.cwnd += info.acked_bytes / self.mss
                return

        # Per-RTT adjustment: act once per window of sequence numbers.
        if info.now < 0 or self.sender.highest_acked < self._epoch_end_seq:
            return
        self._epoch_end_seq = self.sender.next_seq
        if queued < self.alpha:
            self.cwnd += 1.0
        elif queued > self.beta:
            self.cwnd -= 1.0
        self.clamp_cwnd()

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        # Vegas halves on loss like Reno (rare on the paths studied here).
        self.cwnd *= 0.5
        self.clamp_cwnd()
        self.ssthresh = self.cwnd
        self._in_slow_start = False

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.cwnd * 0.5, 2.0)
        self.cwnd = 2.0
        self._in_slow_start = True
