"""AIMD-on-delay — the Section 6.2 design-space conjecture, executable.

The paper argues that CCAs with *large* equilibrium delay oscillations
sidestep the pigeonhole argument: the sending rate can be encoded in the
**frequency** of delay oscillation rather than its absolute value, and
"AIMD on delay is an interesting design space for researchers to seek
starvation-free CCAs".

:class:`DelayAimd` implements the idea: grow cwnd additively until the
measured queueing delay exceeds ``threshold``, then halve — a Reno
sawtooth driven by delay instead of loss. Its properties, by design:

* NOT delay-convergent: delta(C) ~ threshold (a large constant), so
  Theorem 1's premise D > 2*delta_max requires jitter larger than the
  whole threshold;
* efficient: the sawtooth averages ~75% of capacity plus the queue;
* jitter-resistant: non-congestive delay smaller than ``threshold``
  only shifts the sawtooth's turning points, changing throughput by a
  bounded factor (the same argument as for loss-based AIMD in 5.4) —
  crucially its backoffs still *happen*, at a frequency the competing
  flow's rate determines.

The min-RTT estimator is the remaining soft spot (as for every
delay-based CCA); ``base_rtt`` gives it an oracle when an experiment
needs to isolate the oscillation mechanism.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND, SSTHRESH_INF


class DelayAimd(WindowCCA):
    """AIMD with multiplicative decrease on a queueing-delay threshold.

    Args:
        threshold: queueing delay (above the min-RTT estimate) that
            triggers a window cut, seconds. This is also (roughly) the
            CCA's equilibrium delay oscillation delta(C).
        md_factor: multiplicative decrease factor.
        base_rtt: optional Rm oracle (None = min-RTT estimator).
    """

    def __init__(self, threshold: float = 0.05, md_factor: float = 0.5,
                 initial_cwnd: float = INITIAL_CWND,
                 base_rtt: Optional[float] = None) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.threshold = threshold
        self.md_factor = md_factor
        self.base_rtt_oracle = base_rtt
        self.base_rtt = base_rtt if base_rtt is not None else math.inf
        self.ssthresh = SSTHRESH_INF
        self._recovery_until = -1
        self.backoffs = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, info: AckInfo) -> None:
        if self.base_rtt_oracle is None and info.rtt < self.base_rtt:
            self.base_rtt = info.rtt
        if not math.isfinite(self.base_rtt):
            return
        queueing = info.rtt - self.base_rtt
        if queueing > self.threshold:
            self._backoff()
            return
        acked_packets = info.acked_bytes / self.mss
        if self.in_slow_start:
            self.cwnd += acked_packets
        else:
            self.cwnd += acked_packets / self.cwnd

    def _backoff(self) -> None:
        newest = self.sender.highest_acked
        if newest <= self._recovery_until:
            return  # one cut per window in flight
        self._recovery_until = self.sender.next_seq - 1
        self.cwnd *= self.md_factor
        self.clamp_cwnd()
        self.ssthresh = self.cwnd
        self.backoffs += 1

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        # Short buffers: fall back to loss-driven AIMD.
        if seq <= self._recovery_until:
            return
        self._recovery_until = self.sender.next_seq - 1
        self.cwnd *= self.md_factor
        self.clamp_cwnd()
        self.ssthresh = self.cwnd

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.cwnd * self.md_factor, 2.0)
        self.cwnd = 2.0
        self._recovery_until = self.sender.next_seq - 1
