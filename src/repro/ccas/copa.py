"""Copa: target rate 1/(delta * dq) with velocity-doubling window moves.

Copa (Arun & Balakrishnan, NSDI 2018) estimates queueing delay as
``dq = standing_rtt - min_rtt`` where *standing RTT* is the minimum RTT
over a recent window of ~srtt/2 and *min RTT* the minimum over a long
window. It steers its rate cwnd/rtt toward the target ``1/(delta*dq)``
packets/s. In equilibrium each flow keeps roughly ``2/delta`` packets in
the queue (delta = 0.5 -> 4 packets), giving the paper's Figure 3 curve
RTT ~ Rm + 2.5/(delta*C) with oscillation delta(C) ~ 4*alpha/C.

The paper's Section 5.1 attack: one packet observing an RTT 1 ms below
the true Rm permanently poisons ``min_rtt``, inflating dq by 1 ms and
collapsing the target rate — throughput drops from 120 to ~8 Mbit/s.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional, Tuple

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND


class Copa(WindowCCA):
    """Copa in its default (non-competitive) mode.

    Args:
        delta: Copa's delta parameter; target queueing delay scales as
            1/delta packets.
        min_rtt_window: horizon for the long-run min-RTT filter, seconds
            (math.inf = remember forever, matching short experiments).
        base_rtt: optional Rm oracle; disables the min-RTT estimator
            (used to show the attack requires estimation, not dynamics).
    """

    def __init__(self, delta: float = 0.5,
                 initial_cwnd: float = INITIAL_CWND,
                 min_rtt_window: float = math.inf,
                 base_rtt: Optional[float] = None) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.delta = delta
        self.min_rtt_window = min_rtt_window
        self.base_rtt_oracle = base_rtt

        # Standing RTT: monotonic (increasing) deque of (time, rtt) so the
        # windowed minimum is O(1) amortized per sample.
        self._rtt_history: Deque[Tuple[float, float]] = deque()
        self._min_rtt_history: Deque[Tuple[float, float]] = deque()
        self._min_rtt_scalar = math.inf   # used when the window is infinite
        self.velocity = 1.0
        self._direction = 0          # +1 increasing, -1 decreasing
        self._direction_rtts = 0
        self._epoch_end_seq = 0
        self._slow_start = True
        self.srtt: Optional[float] = None

    # -- RTT filters -----------------------------------------------------

    def _update_filters(self, now: float, rtt: float) -> None:
        srtt = self.srtt
        srtt = rtt if srtt is None else 0.9 * srtt + 0.1 * rtt
        self.srtt = srtt
        window = srtt / 2
        if window < 0.01:
            window = 0.01
        history = self._rtt_history
        # Monotonic deque: drop entries that can never again be the min.
        while history and history[-1][1] >= rtt:
            history.pop()
        history.append((now, rtt))
        cutoff = now - window
        while history[0][0] < cutoff:
            history.popleft()
        if self.base_rtt_oracle is None:
            if math.isinf(self.min_rtt_window):
                if rtt < self._min_rtt_scalar:
                    self._min_rtt_scalar = rtt
            else:
                long_hist = self._min_rtt_history
                while long_hist and long_hist[-1][1] >= rtt:
                    long_hist.pop()
                long_hist.append((now, rtt))
                while (long_hist
                       and long_hist[0][0] < now - self.min_rtt_window):
                    long_hist.popleft()

    @property
    def standing_rtt(self) -> float:
        if not self._rtt_history:
            return math.inf
        return self._rtt_history[0][1]

    @property
    def min_rtt(self) -> float:
        if self.base_rtt_oracle is not None:
            return self.base_rtt_oracle
        if math.isinf(self.min_rtt_window):
            return self._min_rtt_scalar
        if not self._min_rtt_history:
            return math.inf
        return self._min_rtt_history[0][1]

    # -- control -----------------------------------------------------------

    def on_ack(self, info: AckInfo) -> None:
        now = info.now
        rtt = info.rtt
        self._update_filters(now, rtt)
        # Inlined standing_rtt / min_rtt (this runs once per ACK).
        history = self._rtt_history
        standing = history[0][1] if history else math.inf
        oracle = self.base_rtt_oracle
        if oracle is not None:
            min_rtt = oracle
        elif math.isinf(self.min_rtt_window):
            min_rtt = self._min_rtt_scalar
        else:
            long_hist = self._min_rtt_history
            min_rtt = long_hist[0][1] if long_hist else math.inf
        if not (math.isfinite(standing) and math.isfinite(min_rtt)):
            return
        dq = max(standing - min_rtt, 0.0)
        delta = self.delta
        if dq <= 1e-9:
            target_rate = math.inf
        else:
            target_rate = 1.0 / (delta * dq)   # packets per second
        cwnd = self.cwnd
        current_rate = cwnd / standing

        if self._slow_start:
            if current_rate < target_rate:
                self.cwnd = cwnd + info.acked_bytes / self.mss
                return
            self._slow_start = False

        # Cap the velocity so one RTT's worth of ACKs (~cwnd of them)
        # changes cwnd by at most a factor of 1.5: v/delta <= cwnd/2.
        velocity = min(self.velocity, delta * cwnd / 2)
        step = velocity / (delta * cwnd)
        if current_rate < target_rate:
            self.cwnd = cwnd + step
            self._note_direction(+1)
        else:
            self.cwnd = cwnd - step
            self._note_direction(-1)
        self.clamp_cwnd()

    def _note_direction(self, direction: int) -> None:
        """Copa's velocity rule, evaluated once per RTT epoch.

        Velocity doubles only after the direction has persisted for three
        consecutive RTTs (Copa paper Section 2.2); any direction change
        resets it to 1.
        """
        if direction != self._direction:
            self.velocity = 1.0
            self._direction = direction
            self._direction_rtts = 0
            return
        if self.sender.highest_acked < self._epoch_end_seq:
            return
        self._epoch_end_seq = self.sender.next_seq
        self._direction_rtts += 1
        if self._direction_rtts >= 3:
            self.velocity = min(self.velocity * 2, 2 ** 16)

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        # Default-mode Copa only reacts to loss via its delay signal;
        # halve defensively on an actual drop (short-buffer paths).
        self.cwnd *= 0.5
        self.velocity = 1.0
        self.clamp_cwnd()

    def on_timeout(self, now: float) -> None:
        self.cwnd = 2.0
        self.velocity = 1.0
        self._slow_start = True
