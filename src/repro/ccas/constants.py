"""Shared CCA defaults."""

#: Default packet size, bytes (the paper's alpha example uses 1500).
DEFAULT_MSS = 1500

#: Initial congestion window, packets (RFC 6928 style).
INITIAL_CWND = 10.0

#: Slow-start threshold "infinity".
SSTHRESH_INF = float("inf")
