"""LEDBAT (RFC 6817): scavenger CCA targeting a fixed queueing delay.

LEDBAT measures one-way (here: round-trip) queueing delay against a
base-delay minimum filter and nudges cwnd proportionally to the distance
from ``target`` (default 100 ms): another delay-convergent design — on an
ideal path it converges to RTT = Rm + target with delta(C) -> 0, so the
paper's starvation result applies to it as well (min-filter poisoning
works exactly as for Copa).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Tuple

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND


class Ledbat(WindowCCA):
    """LEDBAT with a windowed base-delay filter.

    Args:
        target: queueing-delay target in seconds (RFC default 0.1).
        gain: window gain per off-target RTT.
        base_history: horizon of the base-delay min filter, seconds.
    """

    def __init__(self, target: float = 0.1, gain: float = 1.0,
                 initial_cwnd: float = INITIAL_CWND,
                 base_history: float = math.inf) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        if target <= 0:
            raise ValueError(f"target must be > 0, got {target}")
        self.target = target
        self.gain = gain
        self.base_history = base_history
        self._base_samples: Deque[Tuple[float, float]] = deque()

    def _base_delay(self, now: float, rtt: float) -> float:
        # Monotonic deque: O(1) amortized sliding-window minimum.
        samples = self._base_samples
        while samples and samples[-1][1] >= rtt:
            samples.pop()
        samples.append((now, rtt))
        if math.isfinite(self.base_history):
            while samples and samples[0][0] < now - self.base_history:
                samples.popleft()
        return samples[0][1]

    def on_ack(self, info: AckInfo) -> None:
        base = self._base_delay(info.now, info.rtt)
        queuing_delay = info.rtt - base
        off_target = (self.target - queuing_delay) / self.target
        acked_packets = info.acked_bytes / self.mss
        self.cwnd += self.gain * off_target * acked_packets / self.cwnd
        self.clamp_cwnd()

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        self.cwnd *= 0.5
        self.clamp_cwnd()

    def on_timeout(self, now: float) -> None:
        self.cwnd = 2.0
