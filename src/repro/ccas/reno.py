"""TCP NewReno: slow start + AIMD congestion avoidance + fast recovery.

NewReno is the paper's canonical *loss-based, non-delay-convergent* CCA
(Section 5.4, Figure 7): it never converges to a bounded delay range on
an ideal path — its queueing delay saw-tooths over the whole buffer — and
that is precisely why small delay jitter cannot starve it (only bias it
by a bounded factor).
"""

from __future__ import annotations

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND, SSTHRESH_INF


class NewReno(WindowCCA):
    """AIMD with slow start and once-per-window multiplicative decrease.

    Args:
        initial_cwnd: starting window, packets.
        md_factor: multiplicative decrease factor (0.5 = classic Reno).
    """

    def __init__(self, initial_cwnd: float = INITIAL_CWND,
                 md_factor: float = 0.5) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=1.0)
        self.md_factor = md_factor
        self.ssthresh = SSTHRESH_INF
        self._recovery_until = -1  # highest seq outstanding at last cut

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, info: AckInfo) -> None:
        acked_packets = info.acked_bytes / self.mss
        if self.in_slow_start:
            self.cwnd += acked_packets
            if self.cwnd >= self.ssthresh:
                self.cwnd = self.ssthresh
        else:
            self.cwnd += acked_packets / self.cwnd

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        if seq <= self._recovery_until:
            return  # still in the same recovery episode
        self._recovery_until = self.sender.next_seq - 1
        self.cwnd *= self.md_factor
        self.clamp_cwnd()
        self.ssthresh = self.cwnd

    def on_timeout(self, now: float) -> None:
        self.ssthresh = max(self.cwnd * self.md_factor, 2.0)
        self.cwnd = 1.0
        self._recovery_until = self.sender.next_seq - 1
