"""PCC Allegro: loss-threshold utility with randomized controlled trials.

Utility per monitor interval (Dong et al., NSDI 2015):

    u(r) = T * Sigmoid_a(0.05 - L) - T * L,   Sigmoid_a(y) = 1/(1+e^(-a*y))

with T the achieved throughput and L the loss rate of the packets sent
during the interval. The sigmoid makes Allegro insensitive to loss below
the 5% threshold and sharply averse above it.

Control: Allegro runs a four-MI randomized controlled trial — two MIs at
r(1+eps) and two at r(1-eps) in seeded-random order — and moves
multiplicatively only when *both* pairs agree on the better direction
(this double-agreement rule is what filters random-loss noise; a 2-MI
variant random-walks under symmetric 2% loss). Consecutive consistent
decisions grow the step; inconclusive trials hold the rate and widen eps.

Relevance to the paper (Section 5.4): Allegro tolerates up to 5% random
loss at full utilization — but when two flows see *unequal* loss (2% vs
0%), the lossy flow maps its loss rate to a much lower inferred share and
starves (paper measured 10.3 vs 99.1 Mbit/s).
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, Optional, Tuple

from .. import units
from .pcc_base import MonitorIntervalCCA, MonitorStats

EPSILON_MIN = 0.02
EPSILON_STEP = 0.02
EPSILON_MAX = 0.1
SIGMOID_ALPHA = 100.0
MAX_STEP = 0.3


class Allegro(MonitorIntervalCCA):
    """PCC Allegro with the sigmoid loss-threshold utility.

    Args:
        initial_rate: starting rate, bytes/s.
        loss_threshold: the sigmoid's center (paper default 5%).
        seed: shuffles the RCT's up/down MI order. Any int replays the
            exact same trial order; ``None`` draws OS entropy and makes
            the run irreproducible (never the default — scenario specs
            derive a per-flow seed from the root seed instead, see
            :mod:`repro.spec.seeds`).
    """

    def __init__(self, initial_rate: float = units.mbps(1.0),
                 loss_threshold: float = 0.05,
                 seed: Optional[int] = 0) -> None:
        super().__init__(initial_rate=initial_rate, min_mi_packets=100)
        self.loss_threshold = loss_threshold
        self.base_rate = initial_rate
        self.in_slow_start = True
        self._best_ss_utility: Optional[float] = None
        self._plan: Deque[Tuple[float, str]] = deque()
        self._trial: dict = {}
        self._rng = random.Random(seed)
        self._epsilon = EPSILON_MIN
        self._consistent = 0
        self._last_direction = 0

    def utility(self, stats: MonitorStats) -> float:
        """Allegro's sigmoid loss-threshold utility."""
        throughput_mbps = units.to_mbps(stats.throughput())
        loss = stats.loss_rate()
        sigmoid = 1.0 / (1.0 + math.exp(
            -SIGMOID_ALPHA * (self.loss_threshold - loss)))
        return throughput_mbps * sigmoid - throughput_mbps * loss

    # -- MI planning -------------------------------------------------------

    def plan_interval(self) -> Tuple[float, str]:
        if self._plan:
            return self._plan.popleft()
        return self.base_rate, "base"

    def _enqueue_trial(self) -> None:
        """Plan the 4-MI randomized controlled trial: 2 up, 2 down."""
        up = self.base_rate * (1 + self._epsilon)
        down = self.base_rate * (1 - self._epsilon)
        tags = [("up1", up), ("up2", up), ("down1", down), ("down2", down)]
        self._rng.shuffle(tags)
        self._trial = {}
        for tag, rate in tags:
            self._plan.append((rate, tag))

    # -- controller ---------------------------------------------------------

    def on_interval_done(self, stats: MonitorStats) -> None:
        utility = self.utility(stats)
        if self.in_slow_start:
            if stats.rate < self.base_rate * 0.99:
                return  # stale MI from the feedback lag
            if (self._best_ss_utility is None
                    or utility > self._best_ss_utility):
                self._best_ss_utility = utility
                self.base_rate = stats.rate * 2.0
            else:
                self.in_slow_start = False
                self.base_rate = stats.rate / 2.0
                self._plan.clear()
                self._enqueue_trial()
            return

        if stats.tag in ("up1", "up2", "down1", "down2"):
            self._trial[stats.tag] = utility
            if len(self._trial) == 4:
                self._decide(self._trial)
                self._trial = {}
                self._enqueue_trial()

    def _decide(self, trial: dict) -> None:
        pair1_up = trial["up1"] > trial["down1"]
        pair2_up = trial["up2"] > trial["down2"]
        if pair1_up != pair2_up:
            # Inconclusive: hold the rate and probe harder next time.
            self._epsilon = min(EPSILON_MAX, self._epsilon + EPSILON_STEP)
            return
        direction = 1 if pair1_up else -1
        if direction == self._last_direction:
            self._consistent += 1
        else:
            self._consistent = 0
        self._last_direction = direction
        step = min(self._epsilon * (1 + self._consistent), MAX_STEP)
        self.base_rate *= (1 + direction * step)
        self._epsilon = EPSILON_MIN
