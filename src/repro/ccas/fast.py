"""FAST TCP: smoothed fixed-point iteration toward ``alpha`` queued packets.

FAST shares Vegas's equilibrium (RTT = Rm + n*alpha/C, delta(C) = 0) but
converges by a multiplicative window update instead of AIAD:

    cwnd <- min(2*cwnd, (1-gamma)*cwnd + gamma*(base_rtt/rtt*cwnd + alpha))

Reference: Wei, Jin, Low, Hegde, "FAST TCP: Motivation, Architecture,
Algorithms, Performance", IEEE/ACM ToN 2006.
"""

from __future__ import annotations

import math

from ..sim.packet import AckInfo
from .base import WindowCCA
from .constants import INITIAL_CWND


class FastTCP(WindowCCA):
    """FAST TCP window control.

    Args:
        alpha: target number of queued packets per flow.
        gamma: smoothing factor in (0, 1].
        base_rtt: optional Rm oracle (None = min-RTT estimator).
    """

    def __init__(self, alpha: float = 4.0, gamma: float = 0.5,
                 initial_cwnd: float = INITIAL_CWND,
                 base_rtt: float = None) -> None:
        super().__init__(initial_cwnd=initial_cwnd, min_cwnd=2.0)
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.alpha = alpha
        self.gamma = gamma
        self.base_rtt_oracle = base_rtt
        self.base_rtt = base_rtt if base_rtt is not None else math.inf
        self._epoch_end_seq = 0
        self._avg_rtt: float = None

    def on_ack(self, info: AckInfo) -> None:
        if self.base_rtt_oracle is None and info.rtt < self.base_rtt:
            self.base_rtt = info.rtt
        if self._avg_rtt is None:
            self._avg_rtt = info.rtt
        else:
            # FAST averages RTT over a window; use an EWMA stand-in.
            self._avg_rtt = 0.9 * self._avg_rtt + 0.1 * info.rtt
        if not math.isfinite(self.base_rtt) or self._avg_rtt <= 0:
            return
        # Update once per RTT (per window of sequence numbers).
        if self.sender.highest_acked < self._epoch_end_seq:
            return
        self._epoch_end_seq = self.sender.next_seq
        target = (self.base_rtt / self._avg_rtt) * self.cwnd + self.alpha
        self.cwnd = min(2 * self.cwnd,
                        (1 - self.gamma) * self.cwnd + self.gamma * target)
        self.clamp_cwnd()

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        self.cwnd *= 0.5
        self.clamp_cwnd()

    def on_timeout(self, now: float) -> None:
        self.cwnd = 2.0
