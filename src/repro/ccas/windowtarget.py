"""Packet-level twin of :class:`repro.model.cca.WindowTargetCCA`.

A deterministic, self-clocked window controller that targets a queueing
delay of ``pedestal + alpha / rate``:

    d ln w = kappa * clip(ln(q_target / q), -1, 1) * dt

applied per ACK with dt = inter-ACK spacing. It exists so the Theorem 1
construction (built on the fluid model) can be replayed in the packet
simulator: the CCA is delay-convergent with a standing queue (Case 1
material), deterministic, and its only persistent state is the window —
so a flow can be started "converged" by handing it the right initial
window.
"""

from __future__ import annotations

import math
from typing import Optional

from ..sim.packet import AckInfo
from .base import CCA


class WindowTarget(CCA):
    """Self-clocked log-window controller with a standing-queue target.

    Args:
        alpha: byte-count term of the target queueing delay.
        pedestal: standing queueing-delay target, seconds.
        kappa: controller gain (1/s).
        rm: Rm oracle (the theory runs assume it; see the paper's note
            that the proofs work "even if the CCA has oracular
            knowledge of Rm"). None = min-RTT estimator.
        initial_window: starting window in bytes (None = 10 packets).
    """

    def __init__(self, alpha: float = 6000.0, pedestal: float = 0.04,
                 kappa: float = 1.0, rm: Optional[float] = None,
                 initial_window: Optional[float] = None) -> None:
        super().__init__()
        if alpha <= 0 or pedestal < 0 or kappa <= 0:
            raise ValueError("invalid WindowTarget parameters")
        self.alpha = alpha
        self.pedestal = pedestal
        self.kappa = kappa
        self.rm_oracle = rm
        self.window = initial_window if initial_window else 10 * 1500.0
        self._min_rtt = rm if rm is not None else math.inf
        self._last_ack_time: Optional[float] = None
        self._latest_rtt: Optional[float] = None

    def on_ack(self, info: AckInfo) -> None:
        if self.rm_oracle is None and info.rtt < self._min_rtt:
            self._min_rtt = info.rtt
        self._latest_rtt = info.rtt
        if not math.isfinite(self._min_rtt):
            return
        dt = 0.0
        if self._last_ack_time is not None:
            dt = max(info.now - self._last_ack_time, 0.0)
        self._last_ack_time = info.now
        if dt <= 0:
            return
        queueing = max(info.rtt - self._min_rtt, 1e-9)
        rate = self.window / info.rtt
        target = self.pedestal + self.alpha / max(rate, 1.0)
        drive = math.log(target / queueing)
        drive = min(max(drive, -1.0), 1.0)
        self.window *= math.exp(self.kappa * drive * min(dt, 0.1))
        self.window = max(self.window, 2 * 1500.0)

    def on_loss(self, now: float, seq: int, lost_bytes: int) -> None:
        self.window = max(self.window * 0.7, 2 * 1500.0)

    def on_timeout(self, now: float) -> None:
        self.window = max(self.window * 0.5, 2 * 1500.0)

    @property
    def cwnd_bytes(self) -> float:
        return self.window

    @property
    def pacing_rate(self) -> Optional[float]:
        if self._latest_rtt is None:
            return None
        # Pace at the self-clocked rate to keep the queue smooth.
        return self.window / self._latest_rtt
