"""The Section 5 starvation-scenario library.

Each function builds and runs one of the paper's empirical experiments
and returns the :class:`~repro.sim.runner.RunResult`. Benchmarks and
examples call these; parameters default to the paper's but every
experiment takes a ``scale`` argument so tests can run a cheaper version
with the same dimensionless shape (rates scale down, durations shrink,
propagation delays stay).
"""

from __future__ import annotations

from typing import Optional

from .. import units
from ..ccas.allegro import Allegro
from ..ccas.bbr import BBR
from ..ccas.copa import Copa
from ..ccas.cubic import Cubic
from ..ccas.reno import NewReno
from ..ccas.vivace import Vivace
from ..sim.jitter import AckAggregationJitter, ConstantJitter, \
    ExemptFirstJitter
from ..sim.loss import RandomLossElement
from ..sim.network import FlowConfig, LinkConfig
from ..sim.runner import RunResult, run_scenario_full


def copa_single_flow_poisoned(rate_mbps: float = 120.0,
                              rm_ms: float = 60.0,
                              poison_ms: float = 1.0,
                              duration: float = 30.0,
                              warmup: Optional[float] = None) -> RunResult:
    """Section 5.1, single flow: one packet with an RTT 1 ms below Rm.

    Implemented as a base path of Rm - 1 ms plus a constant 1 ms of
    non-congestive delay that the flow's very first packet skips (it
    also sees an empty queue, so its RTT is exactly Rm - 1 ms).
    Paper: throughput drops from 120 to ~8 Mbit/s.
    """
    rm = units.ms(rm_ms - poison_ms)
    poison = units.ms(poison_ms)
    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps)),
        [FlowConfig(
            cca_factory=Copa, rm=rm, label="poisoned",
            ack_elements=[lambda sim, sink: ExemptFirstJitter(
                sim, sink, poison, exempt_seqs=[0])])],
        duration=duration,
        warmup=duration / 3 if warmup is None else warmup)


def copa_two_flow_poisoned(rate_mbps: float = 120.0, rm_ms: float = 60.0,
                           poison_ms: float = 1.0, duration: float = 30.0,
                           warmup: Optional[float] = None) -> RunResult:
    """Section 5.1, two flows: only one gets the fast first packet.

    Paper: 8.8 vs 95 Mbit/s.
    """
    rm = units.ms(rm_ms - poison_ms)
    poison = units.ms(poison_ms)
    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps)),
        [FlowConfig(
            cca_factory=Copa, rm=rm, label="poisoned",
            ack_elements=[lambda sim, sink: ExemptFirstJitter(
                sim, sink, poison, exempt_seqs=[0])]),
         FlowConfig(
            cca_factory=Copa, rm=rm, label="normal",
            ack_elements=[lambda sim, sink: ConstantJitter(
                sim, sink, poison)])],
        duration=duration,
        warmup=duration / 3 if warmup is None else warmup)


def bbr_rtt_starvation(rate_mbps: float = 120.0, rm1_ms: float = 40.0,
                       rm2_ms: float = 80.0, jitter_ms: float = 4.0,
                       duration: float = 60.0,
                       warmup: Optional[float] = None,
                       buffer_bdp: float = 8.0) -> RunResult:
    """Section 5.2: two BBR flows with Rm 40/80 ms on 120 Mbit/s.

    A small ACK-aggregation jitter (the paper's "natural OS jitter")
    inflates the max-bandwidth filters and pushes both flows into the
    cwnd-limited mode, where the flow with the smaller Rm starves.
    Paper: 8.3 vs 107 Mbit/s after 60 s.
    """
    jitter = units.ms(jitter_ms)
    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps), buffer_bdp=buffer_bdp),
        [FlowConfig(
            cca_factory=lambda: BBR(seed=1), rm=units.ms(rm1_ms),
            label=f"rm{rm1_ms:.0f}",
            ack_elements=[lambda sim, sink: AckAggregationJitter(
                sim, sink, jitter)]),
         FlowConfig(
            cca_factory=lambda: BBR(seed=2), rm=units.ms(rm2_ms),
            label=f"rm{rm2_ms:.0f}",
            ack_elements=[lambda sim, sink: AckAggregationJitter(
                sim, sink, jitter)])],
        duration=duration,
        warmup=duration / 3 if warmup is None else warmup)


def vivace_ack_aggregation(rate_mbps: float = 120.0, rm_ms: float = 60.0,
                           aggregation_ms: float = 60.0,
                           duration: float = 60.0,
                           warmup: Optional[float] = None,
                           buffer_bdp: float = 8.0) -> RunResult:
    """Section 5.3: one Vivace flow's ACKs arrive only at 60 ms ticks.

    Paper: 9.9 vs 99.4 Mbit/s.
    """
    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps), buffer_bdp=buffer_bdp),
        [FlowConfig(
            cca_factory=Vivace, rm=units.ms(rm_ms), label="aggregated",
            ack_elements=[lambda sim, sink: AckAggregationJitter(
                sim, sink, units.ms(aggregation_ms))]),
         FlowConfig(cca_factory=Vivace, rm=units.ms(rm_ms),
                    label="normal")],
        duration=duration,
        warmup=duration / 3 if warmup is None else warmup)


def allegro_asymmetric_loss(rate_mbps: float = 120.0, rm_ms: float = 40.0,
                            loss1: float = 0.02, loss2: float = 0.0,
                            duration: float = 60.0,
                            warmup: Optional[float] = None,
                            seed: int = 11) -> RunResult:
    """Section 5.4: PCC Allegro where only one flow sees random loss.

    Paper: 2%/0% gives 10.3 vs 99.1 Mbit/s; 2%/2% shares fairly.
    """
    def elements(prob: float, loss_seed: int):
        if prob <= 0:
            return ()
        return (lambda sim, sink: RandomLossElement(sim, sink, prob,
                                                    seed=loss_seed),)

    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps), buffer_bdp=1.0),
        [FlowConfig(cca_factory=lambda: Allegro(seed=1),
                    rm=units.ms(rm_ms), label=f"loss{loss1:.0%}",
                    data_elements=elements(loss1, seed)),
         FlowConfig(cca_factory=lambda: Allegro(seed=2),
                    rm=units.ms(rm_ms), label=f"loss{loss2:.0%}",
                    data_elements=elements(loss2, seed + 1))],
        duration=duration,
        warmup=duration / 3 if warmup is None else warmup)


def allegro_single_flow_loss(rate_mbps: float = 120.0, rm_ms: float = 40.0,
                             loss: float = 0.02, duration: float = 40.0,
                             warmup: Optional[float] = None,
                             seed: int = 11) -> RunResult:
    """Section 5.4 control: one Allegro flow with 2% loss fully utilizes."""
    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps), buffer_bdp=1.0),
        [FlowConfig(cca_factory=lambda: Allegro(seed=1),
                    rm=units.ms(rm_ms), label="lossy",
                    data_elements=(lambda sim, sink: RandomLossElement(
                        sim, sink, loss, seed=seed),))],
        duration=duration,
        warmup=duration / 3 if warmup is None else warmup)


def loss_based_delayed_acks(cca: str = "reno", rate_mbps: float = 6.0,
                            rm_ms: float = 120.0, buffer_packets: int = 60,
                            delack: int = 4, duration: float = 200.0,
                            warmup: Optional[float] = None) -> RunResult:
    """Figure 7: Reno/Cubic where one receiver delays ACKs of 4 packets.

    Paper: bounded unfairness of 2.7x (Reno) and 3.2x (Cubic) — not
    starvation, because AIMD's large oscillations leak information.
    """
    factories = {"reno": NewReno, "cubic": Cubic}
    if cca not in factories:
        raise ValueError(f"cca must be one of {sorted(factories)}")
    factory = factories[cca]
    return run_scenario_full(
        LinkConfig(rate=units.mbps(rate_mbps),
                   buffer_bytes=buffer_packets * 1500),
        [FlowConfig(cca_factory=factory, rm=units.ms(rm_ms),
                    label="delacks", ack_every=delack,
                    ack_timeout=units.ms(200)),
         FlowConfig(cca_factory=factory, rm=units.ms(rm_ms),
                    label="perpkt")],
        duration=duration,
        warmup=duration / 5 if warmup is None else warmup)
