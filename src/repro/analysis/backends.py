"""Pluggable execution backends: how a grid of experiments runs.

The resilient harness (:mod:`repro.analysis.harness`) decides *what* to
run and how failures/checkpoints are handled; a backend decides *where*
the points execute:

* :class:`SerialBackend` — in-process, in grid order (the default, and
  the reference for bit-identical results).
* :class:`ProcessPoolBackend` — a spawn-based process pool. Workers
  receive only picklable data (a module-level ``run_point`` function
  reference, JSON-able params, a :class:`RunBudget`) and return
  picklable results (plain dicts / :class:`FlowStats` /
  :class:`RunFailure`), never live simulator objects. Combined with
  root-seed derivation (:mod:`repro.spec.seeds`) this makes parallel
  sweeps bit-identical to serial ones.

Both backends funnel each point through :func:`execute_point`, which
owns the retry/back-off and failure-wrapping semantics, so a divergent
point degrades to a :class:`RunFailure` identically on every backend.
Non-recoverable exceptions (programming errors) propagate from workers
to the caller.

``execute_point`` is also the single cache crossing: given a
:class:`~repro.store.ResultStore` it looks the point's content address
up *before* simulating and stores the result *after* — and only
successful results are ever stored, so a retried-then-failed point
cannot poison the store. Because the lookup/put happens inside the
worker body, pool workers share the cache exactly like serial runs do.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, Iterator, Optional,
                    Sequence, Tuple)

from ..errors import ConfigurationError
from ..store import ResultStore, point_cache_key, summarize_params, task_name
from .harness import (RECOVERABLE, RunBudget, RunFailure, _first_line,
                      run_with_retry)

#: ``run_point(params, budget) -> result`` — the unit of grid work.
RunPoint = Callable[[Dict[str, Any], RunBudget], Any]

#: ``(key, params)`` — one grid point.
Point = Tuple[str, Dict[str, Any]]


@dataclass
class PointOutcome:
    """What one grid point produced: a result or a structured failure."""

    key: str
    params: Dict[str, Any]
    result: Any = None
    failure: Optional[RunFailure] = None
    #: True when the result was served from a ResultStore without
    #: simulating; the content address is in ``cache_key`` either way.
    cached: bool = False
    cache_key: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def execute_point(run_point: RunPoint, key: str, params: Dict[str, Any],
                  budget: RunBudget,
                  store: Optional[ResultStore] = None,
                  refresh: bool = False,
                  backend_name: str = "serial") -> PointOutcome:
    """Run one grid point with retries; wrap recoverable failures.

    This is the single execution path shared by every backend (it is a
    module-level function precisely so process pools can pickle it).

    With a ``store``, the point's content address is looked up first —
    a hit skips the simulation entirely and is bit-identical to a live
    run by the cache-key contract (:mod:`repro.store.keys`). On a miss
    the point runs; only a *successful* result is put back, so
    failures never poison the store (they are recorded as ``fail``
    catalog events instead). ``refresh`` forces recomputation and
    overwrites the entry (``--force``).
    """
    start = time.monotonic()
    ckey: Optional[str] = None
    if store is not None:
        ckey = point_cache_key(run_point, params,
                               fingerprint=store.fingerprint)
        if not refresh:
            found, cached = store.fetch(ckey)
            if found:
                store.catalog.record(
                    ckey, "hit", task=task_name(run_point),
                    backend=backend_name,
                    wall_s=time.monotonic() - start,
                    summary=summarize_params(params))
                return PointOutcome(key=key, params=params,
                                    result=cached, cached=True,
                                    cache_key=ckey)
    attempts = 0

    def attempt(budget: RunBudget) -> Any:
        nonlocal attempts
        attempts += 1
        return run_point(params, budget)

    try:
        result = run_with_retry(attempt, budget)
    except RECOVERABLE as exc:
        failure = RunFailure(
            key=key, reason=type(exc).__name__,
            message=_first_line(exc), attempts=attempts,
            elapsed=time.monotonic() - start, params=params)
        if store is not None and ckey is not None:
            store.catalog.record(ckey, "fail",
                                 task=task_name(run_point),
                                 backend=backend_name,
                                 wall_s=time.monotonic() - start,
                                 summary=summarize_params(params))
        return PointOutcome(key=key, params=params, failure=failure,
                            cache_key=ckey)
    if store is not None and ckey is not None:
        store.put(ckey, result, meta={"point": key},
                  task=task_name(run_point))
        store.catalog.record(ckey, "miss", task=task_name(run_point),
                             backend=backend_name,
                             wall_s=time.monotonic() - start,
                             summary=summarize_params(params))
    return PointOutcome(key=key, params=params, result=result,
                        cache_key=ckey)


class SerialBackend:
    """Run points in-process, in grid order. Always available."""

    jobs = 1

    def execute(self, run_point: RunPoint, points: Sequence[Point],
                budget: RunBudget,
                on_start: Optional[Callable[[str], None]] = None,
                store: Optional[ResultStore] = None,
                refresh: bool = False) -> Iterator[PointOutcome]:
        for key, params in points:
            if on_start is not None:
                on_start(key)
            yield execute_point(run_point, key, params, budget,
                                store=store, refresh=refresh,
                                backend_name="serial")

    def __repr__(self) -> str:
        return "SerialBackend()"


def _execute_chunk(run_point: RunPoint, chunk: Sequence[Point],
                   budget: RunBudget, store: Optional[ResultStore],
                   refresh: bool) -> "list[PointOutcome]":
    """Worker body for chunked submission.

    The chunk's points run serially inside one pool task (each still
    through :func:`execute_point`, so retry/cache/failure semantics are
    untouched); one pickle round-trip then covers ``chunksize`` points
    instead of one, which matters for sweeps of many short points.
    """
    return [execute_point(run_point, key, params, budget, store=store,
                          refresh=refresh, backend_name="process-pool")
            for key, params in chunk]


class ProcessPoolBackend:
    """Fan points out over a spawn-based process pool.

    Args:
        jobs: worker count (default: the machine's CPU count).
        chunksize: points submitted per pool task (default 1). Larger
            chunks amortize pickle/IPC overhead for grids of many
            short points; outcomes still arrive per point, so
            checkpoints and curves are identical to ``chunksize=1``
            (and to :class:`SerialBackend`).

    Requirements (enforced eagerly with clear errors):

    * ``run_point`` must be a module-level function — describe the work
      as data (e.g. a :class:`repro.spec.ScenarioSpec` in ``params``)
      rather than a closure over live objects.
    * ``params`` and results must be picklable (JSON-able data and the
      harness dataclasses all are).

    Outcomes are yielded as points finish (not in grid order); the
    harness reassembles grid order, so sweep output is identical to
    :class:`SerialBackend` as long as per-point seeds do not depend on
    execution order — which root-seed derivation guarantees.
    """

    def __init__(self, jobs: Optional[int] = None,
                 chunksize: int = 1) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs or os.cpu_count() or 1
        self.chunksize = chunksize

    def execute(self, run_point: RunPoint, points: Sequence[Point],
                budget: RunBudget,
                on_start: Optional[Callable[[str], None]] = None,
                store: Optional[ResultStore] = None,
                refresh: bool = False) -> Iterator[PointOutcome]:
        points = list(points)
        if not points:
            return
        self._check_picklable(run_point, points)
        context = multiprocessing.get_context("spawn")
        size = self.chunksize
        chunks = [points[i:i + size] for i in range(0, len(points), size)]
        workers = min(self.jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = []
            for chunk in chunks:
                if on_start is not None:
                    for key, _ in chunk:
                        on_start(key)
                # The store travels to the worker (it is plain paths +
                # a fingerprint), so lookups and puts happen where the
                # simulation would run — all processes share one cache.
                futures.append(pool.submit(
                    _execute_chunk, run_point, chunk, budget, store,
                    refresh))
            for future in as_completed(futures):
                for outcome in future.result():
                    yield outcome

    @staticmethod
    def _check_picklable(run_point: RunPoint,
                         points: Iterable[Point]) -> None:
        try:
            pickle.dumps(run_point)
        except Exception as exc:
            raise ConfigurationError(
                f"ProcessPoolBackend needs a picklable module-level "
                f"run_point, got {run_point!r} ({exc}); express the "
                f"work as a ScenarioSpec in params and run it from a "
                f"module-level function, or use SerialBackend")
        try:
            pickle.dumps(list(points))
        except Exception as exc:
            raise ConfigurationError(
                f"grid params must be picklable for "
                f"ProcessPoolBackend: {exc}")

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(jobs={self.jobs})"


def make_backend(jobs: Optional[int] = None, chunksize: int = 1):
    """``--jobs N`` semantics: None/1 -> serial, N > 1 -> process pool."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs=jobs, chunksize=chunksize)
