"""Pluggable execution backends: how a grid of experiments runs.

The resilient harness (:mod:`repro.analysis.harness`) decides *what* to
run and how failures/checkpoints are handled; a backend decides *where*
the points execute:

* :class:`SerialBackend` — in-process, in grid order (the default, and
  the reference for bit-identical results).
* :class:`ProcessPoolBackend` — a spawn-based process pool. Workers
  receive only picklable data (a module-level ``run_point`` function
  reference, JSON-able params, a :class:`RunBudget`) and return
  picklable results (plain dicts / :class:`FlowStats` /
  :class:`RunFailure`), never live simulator objects. Combined with
  root-seed derivation (:mod:`repro.spec.seeds`) this makes parallel
  sweeps bit-identical to serial ones.

Both backends funnel each point through :func:`execute_point`, which
owns the retry/back-off and failure-wrapping semantics, so a divergent
point degrades to a :class:`RunFailure` identically on every backend.
Unexpected non-recoverable exceptions (programming errors) are wrapped
as ``RunFailure(kind="internal")`` — with a crash bundle when a crash
directory is configured — instead of aborting the sweep; only
``KeyboardInterrupt``/``SystemExit`` stay fatal.

:class:`ProcessPoolBackend` additionally self-heals around worker
death: a killed worker (``os._exit``, segfault, OOM kill) breaks the
stdlib pool, so the backend respawns it, resubmits the unfinished
points, and quarantines any point implicated in ``max_point_attempts``
consecutive pool breaks as ``RunFailure(kind="worker_lost")``. A
parent-side stall watchdog (``point_timeout``) terminates hung workers
the in-worker budgets cannot reach, recording ``kind="timeout"``; and
if a replacement pool cannot even be built, the remaining points
degrade to in-process serial execution rather than being dropped.

``execute_point`` is also the single cache crossing: given a
:class:`~repro.store.ResultStore` it looks the point's content address
up *before* simulating and stores the result *after* — and only
successful results are ever stored, so a retried-then-failed point
cannot poison the store. Because the lookup/put happens inside the
worker body, pool workers share the cache exactly like serial runs do.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                CancelledError, ProcessPoolExecutor, wait)
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, Iterator, Optional,
                    Sequence, Tuple)

from ..errors import ConfigurationError
from ..store import ResultStore, point_cache_key, summarize_params, task_name
from .harness import (RECOVERABLE, RunBudget, RunFailure, _first_line,
                      run_with_retry)

#: ``run_point(params, budget) -> result`` — the unit of grid work.
RunPoint = Callable[[Dict[str, Any], RunBudget], Any]

#: ``(key, params)`` — one grid point.
Point = Tuple[str, Dict[str, Any]]


@dataclass
class PointOutcome:
    """What one grid point produced: a result or a structured failure."""

    key: str
    params: Dict[str, Any]
    result: Any = None
    failure: Optional[RunFailure] = None
    #: True when the result was served from a ResultStore without
    #: simulating; the content address is in ``cache_key`` either way.
    cached: bool = False
    cache_key: Optional[str] = None
    #: True when the point simulated fine but the store could not
    #: persist it (ENOSPC et al.) — the result is correct and used,
    #: just not cached; a later run recomputes it.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


def execute_point(run_point: RunPoint, key: str, params: Dict[str, Any],
                  budget: RunBudget,
                  store: Optional[ResultStore] = None,
                  refresh: bool = False,
                  backend_name: str = "serial",
                  crash_dir: Optional[str] = None) -> PointOutcome:
    """Run one grid point with retries; wrap recoverable failures.

    This is the single execution path shared by every backend (it is a
    module-level function precisely so process pools can pickle it).

    With a ``store``, the point's content address is looked up first —
    a hit skips the simulation entirely and is bit-identical to a live
    run by the cache-key contract (:mod:`repro.store.keys`). On a miss
    the point runs; only a *successful* result is put back, so
    failures never poison the store (they are recorded as ``fail``
    catalog events instead). ``refresh`` forces recomputation and
    overwrites the entry (``--force``).

    Failure semantics: recoverable exceptions (budget blowouts,
    simulation errors, invariant violations) become
    ``RunFailure(kind="error")``; anything else except
    ``KeyboardInterrupt``/``SystemExit`` becomes
    ``RunFailure(kind="internal")`` so one buggy point cannot abort a
    sweep. With a ``crash_dir``, every failure also captures a
    reproducible crash bundle (see :mod:`repro.analysis.diagnostics`)
    whose path is attached to the failure record.
    """
    start = time.monotonic()
    ckey: Optional[str] = None
    if store is not None:
        ckey = point_cache_key(run_point, params,
                               fingerprint=store.fingerprint)
        if not refresh:
            found, cached = store.fetch(ckey)
            if found:
                try:
                    store.catalog.record(
                        ckey, "hit", task=task_name(run_point),
                        backend=backend_name,
                        wall_s=time.monotonic() - start,
                        summary=summarize_params(params))
                except OSError:
                    pass  # catalog is advisory; the hit still serves
                return PointOutcome(key=key, params=params,
                                    result=cached, cached=True,
                                    cache_key=ckey)
    attempts = 0

    def attempt(budget: RunBudget) -> Any:
        nonlocal attempts
        attempts += 1
        return run_point(params, budget)

    def fail(exc: BaseException, kind: str) -> PointOutcome:
        elapsed = time.monotonic() - start
        bundle: Optional[str] = None
        if crash_dir is not None:
            from .diagnostics import write_crash_bundle
            bundle = write_crash_bundle(
                crash_dir, key=key, params=params, exc=exc,
                task=task_name(run_point), attempts=max(attempts, 1),
                elapsed=elapsed, budget=budget, backend=backend_name)
        failure = RunFailure(
            key=key, reason=type(exc).__name__,
            message=_first_line(exc), attempts=max(attempts, 1),
            elapsed=elapsed, params=params, kind=kind, bundle=bundle)
        if store is not None and ckey is not None:
            try:
                store.catalog.record(ckey, "fail",
                                     task=task_name(run_point),
                                     backend=backend_name,
                                     wall_s=elapsed,
                                     summary=summarize_params(params))
            except OSError:
                pass  # catalog is advisory; the failure is recorded
        return PointOutcome(key=key, params=params, failure=failure,
                            cache_key=ckey)

    try:
        result = run_with_retry(attempt, budget)
    except RECOVERABLE as exc:
        return fail(exc, "error")
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        # A programming error in the experiment script: degrade to a
        # structured failure (with a bundle carrying the traceback)
        # instead of killing the whole sweep from inside a worker.
        return fail(exc, "internal")
    if store is not None and ckey is not None:
        try:
            store.put(ckey, result, meta={"point": key},
                      task=task_name(run_point))
            store.catalog.record(ckey, "miss", task=task_name(run_point),
                                 backend=backend_name,
                                 wall_s=time.monotonic() - start,
                                 summary=summarize_params(params))
        except OSError:
            # Degrade to no-cache: the result is already in hand and
            # correct — a full (or chaos-injected) disk must not turn
            # a finished simulation into a failed point. The point is
            # simply not persisted and recomputes next time.
            return PointOutcome(key=key, params=params, result=result,
                                cache_key=ckey, degraded=True)
    return PointOutcome(key=key, params=params, result=result,
                        cache_key=ckey)


class SerialBackend:
    """Run points in-process, in grid order. Always available."""

    jobs = 1

    def execute(self, run_point: RunPoint, points: Sequence[Point],
                budget: RunBudget,
                on_start: Optional[Callable[[str], None]] = None,
                store: Optional[ResultStore] = None,
                refresh: bool = False,
                crash_dir: Optional[str] = None) -> Iterator[PointOutcome]:
        for key, params in points:
            if on_start is not None:
                on_start(key)
            yield execute_point(run_point, key, params, budget,
                                store=store, refresh=refresh,
                                backend_name="serial",
                                crash_dir=crash_dir)

    def __repr__(self) -> str:
        return "SerialBackend()"


def _execute_chunk(run_point: RunPoint, chunk: Sequence[Point],
                   budget: RunBudget, store: Optional[ResultStore],
                   refresh: bool,
                   crash_dir: Optional[str] = None
                   ) -> "list[PointOutcome]":
    """Worker body for chunked submission.

    The chunk's points run serially inside one pool task (each still
    through :func:`execute_point`, so retry/cache/failure semantics are
    untouched); one pickle round-trip then covers ``chunksize`` points
    instead of one, which matters for sweeps of many short points.
    """
    return [execute_point(run_point, key, params, budget, store=store,
                          refresh=refresh, backend_name="process-pool",
                          crash_dir=crash_dir)
            for key, params in chunk]


class _ChunkState:
    """Book-keeping for one submitted chunk of the self-healing pool."""

    __slots__ = ("points", "attempts", "first_submit", "started")

    def __init__(self, points: Sequence[Point]) -> None:
        self.points = list(points)
        self.attempts = 0
        self.first_submit: Optional[float] = None
        self.started = False  # on_start already fired for these keys


class ProcessPoolBackend:
    """Fan points out over a self-healing, spawn-based process pool.

    Args:
        jobs: worker count (default: the machine's CPU count).
        chunksize: points submitted per pool task (default 1). Larger
            chunks amortize pickle/IPC overhead for grids of many
            short points; outcomes still arrive per point, so
            checkpoints and curves are identical to ``chunksize=1``
            (and to :class:`SerialBackend`).
        point_timeout: parent-side wall seconds allowed per point (a
            chunk gets ``point_timeout * len(chunk)``). This is the
            backstop for hangs the in-worker engine watchdog cannot
            reach (a callback blocked in C code, a deadlocked worker):
            when no chunk completes within the current stall window the
            hung workers are terminated and their chunks retried or
            quarantined as ``RunFailure(kind="timeout")``. ``None``
            (default) derives the window from ``budget.wall_clock``
            across its retries plus slack — or disables stall detection
            when the budget carries no wall limit.
        max_point_attempts: submissions allowed per chunk before its
            points are quarantined (default 3). A chunk's attempt count
            rises each time it is implicated in a broken or stalled
            pool; its *last* attempt runs in an isolated single-worker
            pool, so an innocent chunk repeatedly co-pending with a
            worker-killer is exonerated before quarantine and only the
            true culprit is recorded as
            ``RunFailure(kind="worker_lost")``.

    Self-healing: a worker death (``os._exit``, segfault, OOM kill)
    breaks the stdlib executor for good, so the backend terminates the
    carcass, respawns a fresh pool, and resubmits every unfinished
    chunk — the sweep completes with per-point failure records instead
    of aborting. If a replacement pool cannot even be constructed, the
    remaining chunks degrade to in-process serial execution (isolated
    suspects excluded — re-running a suspected worker-killer in the
    parent could take the whole sweep down with it; they are
    quarantined instead).

    Requirements (enforced eagerly with clear errors):

    * ``run_point`` must be a module-level function — describe the work
      as data (e.g. a :class:`repro.spec.ScenarioSpec` in ``params``)
      rather than a closure over live objects.
    * ``params`` and results must be picklable (JSON-able data and the
      harness dataclasses all are).

    Outcomes are yielded as points finish (not in grid order); the
    harness reassembles grid order, so sweep output is identical to
    :class:`SerialBackend` as long as per-point seeds do not depend on
    execution order — which root-seed derivation guarantees.
    """

    #: Slack added to budget-derived stall windows: spawn start-up,
    #: result pickling, and scheduling jitter all bill to the window.
    _STALL_SLACK = 30.0

    def __init__(self, jobs: Optional[int] = None,
                 chunksize: int = 1,
                 point_timeout: Optional[float] = None,
                 max_point_attempts: int = 3) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {chunksize}")
        if point_timeout is not None and point_timeout <= 0:
            raise ConfigurationError(
                f"point_timeout must be > 0, got {point_timeout}")
        if max_point_attempts < 1:
            raise ConfigurationError(
                f"max_point_attempts must be >= 1, got "
                f"{max_point_attempts}")
        self.jobs = jobs or os.cpu_count() or 1
        self.chunksize = chunksize
        self.point_timeout = point_timeout
        self.max_point_attempts = max_point_attempts
        #: Telemetry for tests/logs: pools respawned, workers lost.
        self.respawns = 0

    # ------------------------------------------------------------------
    # Stall window
    # ------------------------------------------------------------------

    def _stall_window(self, budget: RunBudget,
                      chunk_len: int) -> Optional[float]:
        """Wall seconds a chunk may run before it counts as hung."""
        if self.point_timeout is not None:
            return self.point_timeout * chunk_len
        if budget.wall_clock is None:
            return None
        # The worker retries internally with back-off, so its
        # legitimate wall time is the sum of the scaled budgets.
        per_point = sum(budget.wall_clock * budget.backoff ** attempt
                        for attempt in range(budget.retries + 1))
        return per_point * chunk_len + self._STALL_SLACK

    # ------------------------------------------------------------------
    # Pool lifecycle helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill worker processes and discard the executor.

        Used when the pool is broken or hung: a graceful shutdown would
        join workers that will never return.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _quarantine(self, state: _ChunkState, kind: str,
                    detail: str) -> "list[PointOutcome]":
        reason = ("WorkerLost" if kind == "worker_lost"
                  else "PointTimeout")
        elapsed = 0.0
        if state.first_submit is not None:
            elapsed = time.monotonic() - state.first_submit
        outcomes = []
        for key, params in state.points:
            outcomes.append(PointOutcome(
                key=key, params=params,
                failure=RunFailure(
                    key=key, reason=reason, message=detail,
                    attempts=state.attempts, elapsed=elapsed,
                    params=params, kind=kind)))
        return outcomes

    def execute(self, run_point: RunPoint, points: Sequence[Point],
                budget: RunBudget,
                on_start: Optional[Callable[[str], None]] = None,
                store: Optional[ResultStore] = None,
                refresh: bool = False,
                crash_dir: Optional[str] = None) -> Iterator[PointOutcome]:
        points = list(points)
        if not points:
            return
        self._check_picklable(run_point, points)
        context = multiprocessing.get_context("spawn")
        size = self.chunksize
        queue: "list[_ChunkState]" = [
            _ChunkState(points[i:i + size])
            for i in range(0, len(points), size)]
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while queue:
                # Last-chance chunks run alone in a single-worker pool
                # for exact blame: a pool break with one chunk in
                # flight can only be that chunk's doing.
                isolated = [s for s in queue
                            if s.attempts >= self.max_point_attempts - 1]
                batch = isolated[:1] if isolated else queue
                workers = 1 if isolated else min(self.jobs, len(batch))
                try:
                    pool = ProcessPoolExecutor(max_workers=workers,
                                               mp_context=context)
                except Exception:
                    # Can't build a pool at all (fd/process exhaustion):
                    # degrade to in-process serial execution, skipping
                    # suspects (re-running a worker-killer in the
                    # parent could kill the sweep itself).
                    pool = None
                    for state in queue:
                        if state.attempts > 0:
                            for outcome in self._quarantine(
                                    state, "worker_lost",
                                    "process pool could not be rebuilt; "
                                    "suspect point not retried in-process"):
                                yield outcome
                        else:
                            for key, params in state.points:
                                if on_start is not None \
                                        and not state.started:
                                    on_start(key)
                                yield execute_point(
                                    run_point, key, params, budget,
                                    store=store, refresh=refresh,
                                    backend_name="serial-degraded",
                                    crash_dir=crash_dir)
                    return
                queue = [s for s in queue if s not in batch]
                future_map: Dict[Any, _ChunkState] = {}
                stall: Optional[float] = None
                for state in batch:
                    state.attempts += 1
                    if state.first_submit is None:
                        state.first_submit = time.monotonic()
                    if on_start is not None and not state.started:
                        state.started = True
                        for key, _ in state.points:
                            on_start(key)
                    # The store travels to the worker (it is plain
                    # paths + a fingerprint), so lookups and puts
                    # happen where the simulation runs — all processes
                    # share one cache.
                    future = pool.submit(
                        _execute_chunk, run_point, state.points, budget,
                        store, refresh, crash_dir)
                    future_map[future] = state
                    window = self._stall_window(budget,
                                                len(state.points))
                    if window is not None:
                        stall = window if stall is None \
                            else max(stall, window)
                pending = set(future_map)
                broken = False
                while pending and not broken:
                    done, pending = wait(pending, timeout=stall,
                                         return_when=FIRST_COMPLETED)
                    if not done:
                        # Nothing finished inside the stall window:
                        # the remaining workers are hung. Kill them
                        # and retry/quarantine their chunks.
                        self.respawns += 1
                        for future in pending:
                            state = future_map[future]
                            if state.attempts >= self.max_point_attempts:
                                for outcome in self._quarantine(
                                        state, "timeout",
                                        f"no progress within "
                                        f"{stall:.1f}s stall window; "
                                        f"worker terminated"):
                                    yield outcome
                            else:
                                queue.append(state)
                        self._terminate_pool(pool)
                        pool = None
                        break
                    # Consume every finished future before reacting to
                    # a break — results that beat the break to the
                    # finish line must not be lost or re-run.
                    broken_states = []
                    for future in done:
                        state = future_map[future]
                        try:
                            outcomes = future.result()
                        except CancelledError:
                            queue.append(state)
                            continue
                        except BrokenExecutor:
                            # A worker died (os._exit, segfault, OOM
                            # kill); the executor is unusable.
                            broken_states.append(state)
                            continue
                        for outcome in outcomes:
                            yield outcome
                    if broken_states:
                        # Requeue or quarantine every unfinished chunk
                        # and respawn the pool.
                        self.respawns += 1
                        casualties = broken_states + [
                            future_map[f] for f in pending]
                        for casualty in casualties:
                            if casualty.attempts \
                                    >= self.max_point_attempts:
                                for outcome in self._quarantine(
                                        casualty, "worker_lost",
                                        "worker process died repeatedly "
                                        "while running this point"):
                                    yield outcome
                            else:
                                queue.append(casualty)
                        self._terminate_pool(pool)
                        pool = None
                        broken = True
                if pool is not None:
                    pool.shutdown(wait=True)
                    pool = None
        finally:
            if pool is not None:
                self._terminate_pool(pool)

    @staticmethod
    def _check_picklable(run_point: RunPoint,
                         points: Iterable[Point]) -> None:
        try:
            pickle.dumps(run_point)
        except Exception as exc:
            raise ConfigurationError(
                f"ProcessPoolBackend needs a picklable module-level "
                f"run_point, got {run_point!r} ({exc}); express the "
                f"work as a ScenarioSpec in params and run it from a "
                f"module-level function, or use SerialBackend")
        try:
            pickle.dumps(list(points))
        except Exception as exc:
            raise ConfigurationError(
                f"grid params must be picklable for "
                f"ProcessPoolBackend: {exc}")

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(jobs={self.jobs})"


def make_backend(jobs: Optional[int] = None, chunksize: int = 1,
                 point_timeout: Optional[float] = None):
    """``--jobs N`` semantics: None/1 -> serial, N > 1 -> process pool."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs=jobs, chunksize=chunksize,
                              point_timeout=point_timeout)
