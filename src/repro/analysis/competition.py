"""Per-CCA-pair competition matrices (fairness / starvation sweeps).

The paper proves starvation for a single CCA family against itself;
what operators actually ask is "who starves whom" across deployed
algorithms. This module answers it empirically: every (unordered) pair
of named CCAs shares a bottleneck — the legacy dumbbell by default, or
any :class:`~repro.spec.TopologySpec` (e.g. a parking lot) — and the
resulting per-pair goodputs are distilled into Jain's index and the
paper-style max/min throughput ratio.

Execution rides the same machinery as rate sweeps: grid points are
serialized :class:`~repro.spec.ScenarioSpec` documents shipped through
:class:`~repro.analysis.harness.ResilientSweep`, so ``jobs=N`` fans
pairs out over worker processes bit-identically to a serial run, the
content-addressed store caches finished pairs, and a failed pair lands
as a :class:`RunFailure` (with optional crash bundle) instead of
killing the matrix.

Workers return only finite raw measurements (labels + per-flow rates);
the possibly-infinite derived metrics (a fully starved flow has ratio
``inf``) are recomputed from stored data at assembly time, keeping the
store and checkpoint files strict JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.fairness import jain_index, throughput_ratio
from ..errors import ConfigurationError
from ..spec import (CCASpec, FlowSpec, LinkSpec, ScenarioSpec,
                    TopologySpec, derive_seed)
from .harness import ResilientSweep, RunBudget, RunFailure
from .backends import make_backend
from .report import format_table


def pair_key(a: str, b: str) -> str:
    """The canonical grid key for an unordered CCA pair."""
    return f"{a}|{b}"


def run_competition_point(params: Dict[str, Any], budget: RunBudget
                          ) -> Dict[str, Any]:
    """Execute one competition pair (spawn-safe worker body).

    ``params`` carries a serialized :class:`ScenarioSpec` plus the run
    window — pure data, so a process pool reproduces the pair
    bit-for-bit. Returns raw finite measurements only.
    """
    spec = ScenarioSpec.from_json(params["scenario"])
    result = spec.run(duration=params["duration"],
                      warmup=params["warmup"],
                      max_events=budget.max_events,
                      wall_clock_budget=budget.wall_clock)
    return {
        "labels": [s.label for s in result.stats],
        "throughputs": [s.throughput for s in result.stats],
        "goodputs": [s.goodput for s in result.stats],
        "losses": [s.losses for s in result.stats],
    }


@dataclass
class CompetitionMatrix:
    """All pairwise competition outcomes for a CCA list.

    ``cells`` maps :func:`pair_key` to the raw worker measurements;
    :meth:`ratio`/:meth:`jain`/:meth:`starved` derive the headline
    metrics on demand (symmetric: ``ratio(a, b) == ratio(b, a)``).
    """

    ccas: List[str]
    rate: float
    rm: float
    duration: float
    cells: Dict[str, Dict[str, Any]]
    #: A pair is flagged starved when its max/min throughput ratio
    #: meets this bound (or one flow moved no bytes at all).
    starve_threshold: float = 50.0
    failures: List[RunFailure] = field(default_factory=list)
    #: Cache accounting ({"hits", "misses", "resumed"}) when run
    #: against a result store; None otherwise.
    cache: Optional[Dict[str, int]] = None

    def cell(self, a: str, b: str) -> Optional[Dict[str, Any]]:
        return self.cells.get(pair_key(a, b)) \
            or self.cells.get(pair_key(b, a))

    def ratio(self, a: str, b: str) -> float:
        """Paper-style max/min throughput ratio for the pair (>= 1)."""
        cell = self.cell(a, b)
        if cell is None:
            return math.nan
        return throughput_ratio(cell["throughputs"])

    def jain(self, a: str, b: str) -> float:
        cell = self.cell(a, b)
        if cell is None:
            return math.nan
        return jain_index(cell["throughputs"])

    def starved(self, a: str, b: str) -> bool:
        ratio = self.ratio(a, b)
        return not math.isnan(ratio) and ratio >= self.starve_threshold

    def starved_pairs(self) -> List[str]:
        return [key for key, cell in sorted(self.cells.items())
                if throughput_ratio(cell["throughputs"])
                >= self.starve_threshold]

    def to_json(self) -> Dict[str, Any]:
        """Strict-JSON document (``inf`` ratios become the string
        ``"inf"``; raw cell data stays numeric)."""
        cells: Dict[str, Any] = {}
        for key, cell in sorted(self.cells.items()):
            ratio = throughput_ratio(cell["throughputs"])
            cells[key] = dict(cell)
            cells[key]["ratio"] = "inf" if math.isinf(ratio) else ratio
            cells[key]["jain"] = jain_index(cell["throughputs"])
            cells[key]["starved"] = bool(ratio >= self.starve_threshold)
        return {
            "ccas": list(self.ccas),
            "rate": self.rate,
            "rm": self.rm,
            "duration": self.duration,
            "starve_threshold": self.starve_threshold,
            "cells": cells,
            "failures": [f.to_json() for f in self.failures],
        }

    def describe(self) -> str:
        """ASCII report: ratio matrix, Jain matrix, starved pairs."""
        def fmt(value: float, decimals: int) -> str:
            if math.isnan(value):
                return "-"
            if math.isinf(value):
                return "inf"
            return f"{value:.{decimals}f}"

        lines = [f"competition matrix: {len(self.ccas)} CCAs, "
                 f"{len(self.cells)} pair(s), "
                 f"rate {self.rate * 8 / 1e6:g} Mbit/s, "
                 f"rm {self.rm * 1e3:g} ms, "
                 f"duration {self.duration:g} s"]
        lines.append("")
        lines.append("max/min throughput ratio "
                     f"(starvation at >= {self.starve_threshold:g}):")
        rows = [[a] + [fmt(self.ratio(a, b), 2) for b in self.ccas]
                for a in self.ccas]
        lines.append(format_table(["vs"] + list(self.ccas), rows))
        lines.append("")
        lines.append("Jain fairness index:")
        rows = [[a] + [fmt(self.jain(a, b), 3) for b in self.ccas]
                for a in self.ccas]
        lines.append(format_table(["vs"] + list(self.ccas), rows))
        starved = self.starved_pairs()
        if starved:
            lines.append("")
            lines.append("starved pairs: " + ", ".join(starved))
        if self.failures:
            lines.append("")
            lines.append(f"failed pairs: "
                         + ", ".join(f.key for f in self.failures))
        return "\n".join(lines)


def build_matrix_points(ccas: Sequence[str], rate: float, rm: float,
                        duration: float = 30.0,
                        warmup_fraction: float = 0.5,
                        mss: int = 1500,
                        seed: int = 0,
                        topology: Optional[TopologySpec] = None,
                        ) -> List[Any]:
    """The declarative pair grid one competition matrix executes.

    Each point is ``(pair_key(a, b), params)`` ready for
    :func:`run_competition_point` — the same construction
    :func:`competition_matrix` uses, exposed so the sweep service can
    probe cache keys or run the identical grid itself. Per-pair seeds
    are ``derive_seed(seed, "matrix", a, b)``, independent of execution
    order.
    """
    names = list(ccas)
    if len(names) < 1:
        raise ConfigurationError("competition matrix needs >= 1 CCA")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate CCA names: {names}")
    base_topology = None
    if topology is not None:
        base_topology = topology.with_link_rate(topology.links[0].id,
                                                rate)
    warmup = duration * warmup_fraction
    points = []
    for i, a in enumerate(names):
        for b in names[i:]:
            flows = (
                FlowSpec(cca=CCASpec(a), rm=rm, mss=mss, label=f"{a}#0"),
                FlowSpec(cca=CCASpec(b), rm=rm, mss=mss, label=f"{b}#1"),
            )
            if base_topology is not None:
                spec = ScenarioSpec(topology=base_topology, flows=flows,
                                    seed=derive_seed(seed, "matrix", a, b))
            else:
                spec = ScenarioSpec(link=LinkSpec(rate=rate), flows=flows,
                                    seed=derive_seed(seed, "matrix", a, b))
            points.append((pair_key(a, b), {
                "scenario": spec.to_json(),
                "duration": duration,
                "warmup": warmup,
            }))
    return points


def assemble_competition_matrix(ccas: Sequence[str], rate: float,
                                rm: float, duration: float,
                                points: Sequence[Any], outcome: Any,
                                starve_threshold: float = 50.0,
                                cached: bool = False
                                ) -> CompetitionMatrix:
    """Fold a :class:`SweepOutcome` back into a
    :class:`CompetitionMatrix` (grid order from ``points``)."""
    cache = None
    if cached:
        cache = {"hits": outcome.hits, "misses": outcome.misses,
                 "resumed": outcome.resumed}
    return CompetitionMatrix(
        ccas=list(ccas), rate=rate, rm=rm, duration=duration,
        cells={key: outcome.completed[key] for key, _ in points
               if key in outcome.completed},
        starve_threshold=starve_threshold,
        failures=list(outcome.failures), cache=cache)


def competition_matrix(ccas: Sequence[str], rate: float, rm: float,
                       duration: float = 30.0,
                       warmup_fraction: float = 0.5,
                       mss: int = 1500,
                       seed: int = 0,
                       starve_threshold: float = 50.0,
                       topology: Optional[TopologySpec] = None,
                       budget: Optional[RunBudget] = None,
                       backend: Optional[object] = None,
                       jobs: Optional[int] = None,
                       store: Optional[object] = None,
                       cache_dir: Optional[str] = None,
                       refresh: bool = False,
                       crash_dir: Optional[str] = None,
                       checkpoint_path: Optional[str] = None,
                       max_failures: Optional[int] = None
                       ) -> CompetitionMatrix:
    """Run every unordered CCA pair (incl. self-pairs) head-to-head.

    Args:
        ccas: CCA registry names (``repro.ccas.registry``); duplicates
            are rejected because pair keys must be unique.
        rate: bottleneck rate in bytes/s. With a ``topology`` this
            overrides the *first* link's rate (the designated
            bottleneck); other links keep their declared rates.
        rm: both flows' propagation RTT, seconds.
        topology: optional multi-bottleneck graph to compete over —
            e.g. :func:`repro.spec.parking_lot_topology`. Both flows
            route over every link in declaration order. Default: the
            legacy single-queue dumbbell.
        seed: root seed; each pair derives its scenario seed as
            ``derive_seed(seed, "matrix", a, b)``, independent of
            execution order and backend.
        starve_threshold: throughput ratio at which a pair is flagged
            starved (50 is a paper-scale "not s-fair for practical s").
        backend/jobs/store/cache_dir/refresh/crash_dir/checkpoint_path/
        max_failures: exactly as in
            :func:`repro.analysis.sweep.sweep_rate_delay`.
    """
    names = list(ccas)
    if backend is None:
        backend = make_backend(jobs)
    elif jobs is not None:
        raise ConfigurationError("pass backend or jobs, not both")
    if cache_dir is not None:
        if store is not None:
            raise ConfigurationError("pass store or cache_dir, not both")
        from ..store import ResultStore
        store = ResultStore(cache_dir)

    points = build_matrix_points(names, rate, rm, duration=duration,
                                 warmup_fraction=warmup_fraction,
                                 mss=mss, seed=seed, topology=topology)

    sweep = ResilientSweep(run_competition_point, budget=budget,
                           checkpoint_path=checkpoint_path,
                           backend=backend, store=store, refresh=refresh,
                           crash_dir=crash_dir,
                           max_failures=max_failures)
    outcome = sweep.run(points)
    return assemble_competition_matrix(
        names, rate, rm, duration, points, outcome,
        starve_threshold=starve_threshold, cached=store is not None)
