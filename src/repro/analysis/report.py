"""ASCII reporting helpers used by benches and examples.

Benches print the paper's reported numbers next to ours so a reader can
eyeball whether the *shape* reproduces (who wins, by what factor).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .. import units
from ..sim.runner import FlowStats, RunResult


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render a simple padded ASCII table."""
    columns = [list(map(str, col)) for col in
               zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def flow_table(stats: Sequence[FlowStats]) -> str:
    """Per-flow summary table in the units the paper reports."""
    rows = []
    for s in stats:
        rows.append([
            s.label,
            f"{units.to_mbps(s.throughput):.2f}",
            f"{s.share:.1%}",
            f"{s.mean_rtt * 1e3:.1f}" if not math.isnan(s.mean_rtt)
            else "-",
            s.losses,
        ])
    return format_table(
        ["flow", "tput (Mbit/s)", "share", "mean RTT (ms)", "losses"],
        rows)


def comparison_line(experiment: str, paper: str, measured: str,
                    verdict: Optional[str] = None) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style output."""
    suffix = f"  [{verdict}]" if verdict else ""
    return f"{experiment}: paper {paper} | measured {measured}{suffix}"


def describe_run(title: str, result: RunResult,
                 paper_numbers: str = "") -> str:
    """A multi-line run report: title, flow table, ratio, utilization."""
    lines = [title]
    if paper_numbers:
        lines.append(f"  paper: {paper_numbers}")
    lines.append(flow_table(result.stats))
    ratio = result.throughput_ratio()
    ratio_text = "inf" if math.isinf(ratio) else f"{ratio:.2f}"
    lines.append(f"  throughput ratio: {ratio_text}   "
                 f"utilization: {result.utilization():.1%}")
    return "\n".join(lines)


def rate_delay_ascii(curve, width: int = 48) -> str:
    """Rough ASCII rendering of a Figure 3 panel (delay vs rate)."""
    lines = [f"rate-delay curve: {curve.label} (Rm = {curve.rm*1e3:.0f} ms)"]
    d_hi = max(p.d_max for p in curve.points)
    for p in curve.points:
        span = max(d_hi - curve.rm, 1e-9)
        lo = int((p.d_min - curve.rm) / span * width)
        hi = max(int((p.d_max - curve.rm) / span * width), lo + 1)
        bar = " " * lo + "#" * (hi - lo)
        lines.append(f"{units.to_mbps(p.link_rate):8.2f} Mbit/s |{bar}")
    lines.append(f"{'':>16} Rm{'':->{width - 2}}{d_hi*1e3:.0f}ms")
    return "\n".join(lines)
