"""Link-rate sweeps producing rate-delay curves (Figure 3).

For each link rate, run a single flow of the CCA on an ideal path in the
packet simulator, discard the pre-convergence prefix, and record the
observed RTT range. The result is the shaded region of the paper's
Figure 3 — d_min(C) and d_max(C) as functions of C for a fixed Rm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .. import units
from ..sim.network import FlowConfig, LinkConfig
from ..sim.runner import run_scenario_full


@dataclass
class RateDelayPoint:
    """One sweep sample: the equilibrium RTT range at a link rate."""

    link_rate: float
    d_min: float
    d_max: float
    throughput: float

    @property
    def delta(self) -> float:
        return self.d_max - self.d_min

    @property
    def utilization(self) -> float:
        return self.throughput / self.link_rate


@dataclass
class RateDelayCurve:
    """A full Figure 3 panel for one CCA."""

    label: str
    rm: float
    points: List[RateDelayPoint]

    def delta_max(self) -> float:
        return max(p.delta for p in self.points)

    def worst_utilization(self) -> float:
        return min(p.utilization for p in self.points)


def sweep_rate_delay(cca_factory: Callable[[], object],
                     link_rates_mbps: Sequence[float], rm: float,
                     label: str = "",
                     duration: Optional[float] = None,
                     warmup_fraction: float = 0.5,
                     mss: int = 1500) -> RateDelayCurve:
    """Measure the equilibrium RTT range across link rates.

    Args:
        cca_factory: fresh CCA per run.
        link_rates_mbps: sweep grid in Mbit/s (the paper uses
            0.1 .. 100).
        rm: propagation RTT (the paper's Figure 3 uses 100 ms).
        duration: per-point run length; default scales with the expected
            convergence time (longer at low rates, where one packet takes
            longer and control steps are slower).
        warmup_fraction: fraction of the run discarded as transient.
    """
    points: List[RateDelayPoint] = []
    for rate_mbps in link_rates_mbps:
        rate = units.mbps(rate_mbps)
        # Low rates need longer runs: each cwnd adjustment takes an RTT
        # and RTTs are dominated by transmission time at low C.
        run_time = duration
        if run_time is None:
            packet_time = mss / rate
            run_time = max(30 * rm, 400 * packet_time, 5.0)
            run_time = min(run_time, 120.0)
        result = run_scenario_full(
            LinkConfig(rate=rate),
            [FlowConfig(cca_factory=cca_factory, rm=rm, mss=mss)],
            duration=run_time, warmup=run_time * warmup_fraction)
        stats = result.stats[0]
        points.append(RateDelayPoint(link_rate=rate,
                                     d_min=stats.min_rtt,
                                     d_max=stats.max_rtt,
                                     throughput=stats.throughput))
    return RateDelayCurve(label=label, rm=rm, points=points)


def log_rate_grid(lo_mbps: float = 0.1, hi_mbps: float = 100.0,
                  points: int = 7) -> List[float]:
    """A log-spaced link-rate grid like Figure 3's x axis."""
    if lo_mbps <= 0 or hi_mbps <= lo_mbps or points < 2:
        raise ValueError("invalid grid parameters")
    step = (hi_mbps / lo_mbps) ** (1.0 / (points - 1))
    return [lo_mbps * step ** i for i in range(points)]
