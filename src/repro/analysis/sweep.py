"""Link-rate sweeps producing rate-delay curves (Figure 3).

For each link rate, run a single flow of the CCA on an ideal path in the
packet simulator, discard the pre-convergence prefix, and record the
observed RTT range. The result is the shaded region of the paper's
Figure 3 — d_min(C) and d_max(C) as functions of C for a fixed Rm.

Sweeps run on the resilient harness (:mod:`repro.analysis.harness`): a
divergent grid point is recorded as a :class:`RunFailure` on the
returned curve instead of aborting the sweep, and an optional JSON
checkpoint lets interrupted sweeps resume from the last completed rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import units
from ..sim.network import FlowConfig, LinkConfig
from ..sim.runner import run_scenario_full
from .harness import ResilientSweep, RunBudget, RunFailure


@dataclass
class RateDelayPoint:
    """One sweep sample: the equilibrium RTT range at a link rate."""

    link_rate: float
    d_min: float
    d_max: float
    throughput: float

    @property
    def delta(self) -> float:
        return self.d_max - self.d_min

    @property
    def utilization(self) -> float:
        return self.throughput / self.link_rate


@dataclass
class RateDelayCurve:
    """A full Figure 3 panel for one CCA."""

    label: str
    rm: float
    points: List[RateDelayPoint]
    #: Grid points that diverged and were skipped (see harness docs).
    failures: List[RunFailure] = field(default_factory=list)

    def delta_max(self) -> float:
        return max(p.delta for p in self.points)

    def worst_utilization(self) -> float:
        return min(p.utilization for p in self.points)


def default_run_time(rate: float, rm: float, mss: int) -> float:
    """Per-point run length scaled to the expected convergence time.

    Low rates need longer runs: each cwnd adjustment takes an RTT and
    RTTs are dominated by transmission time at low C.
    """
    packet_time = mss / rate
    run_time = max(30 * rm, 400 * packet_time, 5.0)
    return min(run_time, 120.0)


def sweep_rate_delay(cca_factory: Callable[[], object],
                     link_rates_mbps: Sequence[float], rm: float,
                     label: str = "",
                     duration: Optional[float] = None,
                     warmup_fraction: float = 0.5,
                     mss: int = 1500,
                     budget: Optional[RunBudget] = None,
                     checkpoint_path: Optional[str] = None,
                     retry_failures: bool = False
                     ) -> RateDelayCurve:
    """Measure the equilibrium RTT range across link rates.

    Args:
        cca_factory: fresh CCA per run.
        link_rates_mbps: sweep grid in Mbit/s (the paper uses
            0.1 .. 100).
        rm: propagation RTT (the paper's Figure 3 uses 100 ms).
        duration: per-point run length; default scales with the expected
            convergence time (see :func:`default_run_time`).
        warmup_fraction: fraction of the run discarded as transient.
        budget: per-point watchdog/retry budget; a point that exceeds it
            lands in ``curve.failures`` instead of hanging the sweep.
        checkpoint_path: JSON checkpoint file; completed rates are
            skipped when the sweep is re-invoked after an interruption.
        retry_failures: when resuming from a checkpoint, re-run rates
            previously recorded as failed (e.g. after raising the
            budget) instead of keeping their failure records.
    """
    def run_point(params: Dict[str, object], point_budget: RunBudget
                  ) -> Dict[str, float]:
        rate = units.mbps(float(params["rate_mbps"]))
        run_time = duration
        if run_time is None:
            run_time = default_run_time(rate, rm, mss)
        result = run_scenario_full(
            LinkConfig(rate=rate),
            [FlowConfig(cca_factory=cca_factory, rm=rm, mss=mss)],
            duration=run_time, warmup=run_time * warmup_fraction,
            max_events=point_budget.max_events,
            wall_clock_budget=point_budget.wall_clock)
        stats = result.stats[0]
        return {"link_rate": rate, "d_min": stats.min_rtt,
                "d_max": stats.max_rtt, "throughput": stats.throughput}

    sweep = ResilientSweep(run_point, budget=budget,
                           checkpoint_path=checkpoint_path,
                           retry_failures_on_resume=retry_failures)
    grid = [(f"{rate_mbps:g}mbps", {"rate_mbps": float(rate_mbps)})
            for rate_mbps in link_rates_mbps]
    outcome = sweep.run(grid)
    points = [RateDelayPoint(**outcome.completed[key])
              for key, _ in grid if key in outcome.completed]
    return RateDelayCurve(label=label, rm=rm, points=points,
                          failures=list(outcome.failures))


def log_rate_grid(lo_mbps: float = 0.1, hi_mbps: float = 100.0,
                  points: int = 7) -> List[float]:
    """A log-spaced link-rate grid like Figure 3's x axis."""
    if lo_mbps <= 0 or hi_mbps <= lo_mbps or points < 2:
        raise ValueError("invalid grid parameters")
    step = (hi_mbps / lo_mbps) ** (1.0 / (points - 1))
    grid = [min(lo_mbps * step ** i, hi_mbps) for i in range(points)]
    # Floating-point step accumulation can land the last point a hair
    # off hi_mbps on either side; pin it exactly.
    grid[-1] = hi_mbps
    return grid
