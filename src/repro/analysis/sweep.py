"""Link-rate sweeps producing rate-delay curves (Figure 3).

For each link rate, run a single flow of the CCA on an ideal path in the
packet simulator, discard the pre-convergence prefix, and record the
observed RTT range. The result is the shaded region of the paper's
Figure 3 — d_min(C) and d_max(C) as functions of C for a fixed Rm.

Sweeps run on the resilient harness (:mod:`repro.analysis.harness`): a
divergent grid point is recorded as a :class:`RunFailure` on the
returned curve instead of aborting the sweep, and an optional JSON
checkpoint lets interrupted sweeps resume from the last completed rate.

Execution is backend-pluggable (:mod:`repro.analysis.backends`). Name
the CCA declaratively — a registry string or
:class:`~repro.spec.CCASpec` — and the sweep ships each grid point to
workers as a serialized :class:`~repro.spec.ScenarioSpec`, so
``jobs=N`` scales with cores while staying bit-identical to a serial
run (per-point seeds derive from the root ``seed`` and the grid key,
never from execution order). Passing a live callable factory still
works but is confined to the serial backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

from .. import units
from ..errors import ConfigurationError
from ..spec import CCASpec, ScenarioSpec, derive_seed, single_flow_scenario
from ..sim.network import FlowConfig, LinkConfig
from ..sim.runner import run_scenario_full
from .backends import SerialBackend, make_backend
from .harness import ResilientSweep, RunBudget, RunFailure

#: What callers may sweep: a registry name, a CCASpec, or (legacy,
#: serial-only) a zero-argument live factory.
CCALike = Union[str, CCASpec, Callable[[], object]]


@dataclass
class RateDelayPoint:
    """One sweep sample: the equilibrium RTT range at a link rate."""

    link_rate: float
    d_min: float
    d_max: float
    throughput: float

    @property
    def delta(self) -> float:
        return self.d_max - self.d_min

    @property
    def utilization(self) -> float:
        return self.throughput / self.link_rate


@dataclass
class RateDelayCurve:
    """A full Figure 3 panel for one CCA."""

    label: str
    rm: float
    points: List[RateDelayPoint]
    #: Grid points that diverged and were skipped (see harness docs).
    failures: List[RunFailure] = field(default_factory=list)
    #: Cache accounting (``{"hits", "misses", "resumed"}``) when the
    #: sweep ran against a result store; None otherwise. Deliberately
    #: excluded from :meth:`to_json` so cached and uncached runs emit
    #: byte-identical curve documents.
    cache: Optional[Dict[str, int]] = None

    def delta_max(self) -> float:
        return max(p.delta for p in self.points)

    def worst_utilization(self) -> float:
        return min(p.utilization for p in self.points)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable curve (CLI ``--json``, CI comparisons)."""
        return {
            "label": self.label,
            "rm": self.rm,
            "points": [{"link_rate": p.link_rate, "d_min": p.d_min,
                        "d_max": p.d_max, "throughput": p.throughput}
                       for p in self.points],
            "failures": [f.to_json() for f in self.failures],
        }


def default_run_time(rate: float, rm: float, mss: int) -> float:
    """Per-point run length scaled to the expected convergence time.

    Low rates need longer runs: each cwnd adjustment takes an RTT and
    RTTs are dominated by transmission time at low C.
    """
    packet_time = mss / rate
    run_time = max(30 * rm, 400 * packet_time, 5.0)
    return min(run_time, 120.0)


def run_rate_delay_point(params: Dict[str, Any], budget: RunBudget
                         ) -> Dict[str, float]:
    """Execute one spec-described grid point (spawn-safe worker body).

    ``params`` carries a serialized :class:`ScenarioSpec` plus the run
    window — pure data, so this module-level function is all a process
    pool needs to reproduce the point bit-for-bit.
    """
    spec = ScenarioSpec.from_json(params["scenario"])
    result = spec.run(duration=params["duration"],
                      warmup=params["warmup"],
                      max_events=budget.max_events,
                      wall_clock_budget=budget.wall_clock)
    stats = result.stats[0]
    return {"link_rate": spec.bottleneck_rate, "d_min": stats.min_rtt,
            "d_max": stats.max_rtt, "throughput": stats.throughput}


def _as_cca_spec(cca: CCALike) -> Optional[CCASpec]:
    if isinstance(cca, CCASpec):
        return cca
    if isinstance(cca, str):
        return CCASpec(cca)
    return None


def build_rate_delay_points(cca: Optional[CCALike],
                            link_rates_mbps: Sequence[float], rm: float,
                            duration: Optional[float] = None,
                            warmup_fraction: float = 0.5,
                            mss: int = 1500,
                            seed: int = 0,
                            template: Optional[ScenarioSpec] = None,
                            ) -> Tuple[str, List[Tuple[str, Dict[str, Any]]]]:
    """The declarative grid one rate-delay sweep executes.

    Returns ``(label, points)`` where each point is ``(key, params)``
    ready for :func:`run_rate_delay_point` — the same construction
    :func:`sweep_rate_delay` uses, exposed so other callers (the sweep
    service) can probe cache keys or run the identical grid themselves.
    Per-point seeds derive from ``(seed, "sweep", key)``, never from
    execution order, which is what makes any two executions of the same
    grid byte-identical.
    """
    spec = None if template is not None else _as_cca_spec(cca)
    if spec is None and template is None:
        raise ConfigurationError(
            "build_rate_delay_points needs a declarative CCA (registry "
            "name or CCASpec) or a ScenarioSpec template")
    points: List[Tuple[str, Dict[str, Any]]] = []
    for rate_mbps in link_rates_mbps:
        key = f"{float(rate_mbps):g}mbps"
        rate = units.mbps(float(rate_mbps))
        run_time = duration
        if run_time is None:
            run_time = default_run_time(rate, rm, mss)
        if template is not None:
            point_spec = template.with_link_rate(rate)
        else:
            point_spec = single_flow_scenario(spec, rate=rate, rm=rm,
                                              mss=mss)
        point_spec = point_spec.with_seed(derive_seed(seed, "sweep", key))
        points.append((key, {
            "scenario": point_spec.to_json(),
            "duration": run_time,
            "warmup": run_time * warmup_fraction,
        }))
    label = spec.name if spec is not None else "scenario"
    return label, points


def assemble_rate_delay_curve(label: str, rm: float,
                              points: Sequence[Tuple[str, Dict[str, Any]]],
                              outcome: Any,
                              cached: bool = False) -> RateDelayCurve:
    """Fold a :class:`SweepOutcome` back into a :class:`RateDelayCurve`.

    Grid order comes from ``points`` (not completion order), so the
    curve is independent of the execution backend. ``cached`` attaches
    the outcome's hit/miss accounting (sweeps without a store leave
    ``curve.cache`` as None).
    """
    curve_points = [RateDelayPoint(**outcome.completed[key])
                    for key, _ in points if key in outcome.completed]
    cache = None
    if cached:
        cache = {"hits": outcome.hits, "misses": outcome.misses,
                 "resumed": outcome.resumed}
    return RateDelayCurve(label=label, rm=rm, points=curve_points,
                          failures=list(outcome.failures), cache=cache)


def sweep_rate_delay(cca_factory: CCALike,
                     link_rates_mbps: Sequence[float], rm: float,
                     label: str = "",
                     duration: Optional[float] = None,
                     warmup_fraction: float = 0.5,
                     mss: int = 1500,
                     budget: Optional[RunBudget] = None,
                     checkpoint_path: Optional[str] = None,
                     retry_failures: bool = False,
                     backend: Optional[object] = None,
                     jobs: Optional[int] = None,
                     seed: int = 0,
                     template: Optional[ScenarioSpec] = None,
                     store: Optional[object] = None,
                     cache_dir: Optional[str] = None,
                     refresh: bool = False,
                     crash_dir: Optional[str] = None,
                     max_failures: Optional[int] = None
                     ) -> RateDelayCurve:
    """Measure the equilibrium RTT range across link rates.

    Args:
        cca_factory: the CCA to sweep — a registry name (``"vegas"``),
            a :class:`~repro.spec.CCASpec` (``CCASpec("bbr",
            {"seed": 3})``), or a legacy zero-argument factory
            (serial-only: live callables cannot cross process
            boundaries).
        link_rates_mbps: sweep grid in Mbit/s (the paper uses
            0.1 .. 100).
        rm: propagation RTT (the paper's Figure 3 uses 100 ms).
        duration: per-point run length; default scales with the expected
            convergence time (see :func:`default_run_time`).
        warmup_fraction: fraction of the run discarded as transient.
        budget: per-point watchdog/retry budget; a point that exceeds it
            lands in ``curve.failures`` instead of hanging the sweep.
        checkpoint_path: JSON checkpoint file; completed rates are
            skipped when the sweep is re-invoked after an interruption.
        retry_failures: when resuming from a checkpoint, re-run rates
            previously recorded as failed (e.g. after raising the
            budget) instead of keeping their failure records.
        backend: execution backend; defaults to serial (or to
            ``make_backend(jobs)`` when ``jobs`` is given).
        jobs: shorthand for ``backend=make_backend(jobs)`` — ``N > 1``
            fans grid points out over N worker processes.
        seed: root seed; each grid point derives its scenario seed from
            ``(seed, point key)``, so results are independent of
            execution order and backend.
        template: optional :class:`ScenarioSpec` to sweep instead of a
            fresh single-flow scenario — each grid point runs a copy of
            the template with the bottleneck rate replaced (the curve
            reports flow 0). Overrides ``cca_factory``/``mss``/``rm``'s
            scenario-building role (``rm`` still labels the curve).
        store: a :class:`~repro.store.ResultStore` — grid points are
            looked up by content address before simulating and stored
            after, so a warm rerun executes zero simulations while
            producing a byte-identical curve (``curve.cache`` reports
            the hit/miss split).
        cache_dir: shorthand for ``store=ResultStore(cache_dir)``.
        refresh: recompute every point and overwrite store entries
            (the CLI's ``--force``).
        crash_dir: directory for reproducible crash bundles — every
            failed grid point captures one there (see
            :mod:`repro.analysis.diagnostics` and ``repro replay``).
        max_failures: abort the sweep with a
            :class:`~repro.errors.SweepAbortedError` once more than
            this many grid points have failed (``0`` = abort on the
            first failure; ``None`` = never, the default).
    """
    if backend is None:
        backend = make_backend(jobs)
    elif jobs is not None:
        raise ConfigurationError("pass backend or jobs, not both")
    if cache_dir is not None:
        if store is not None:
            raise ConfigurationError("pass store or cache_dir, not both")
        from ..store import ResultStore
        store = ResultStore(cache_dir)

    spec = None if template is not None else _as_cca_spec(cca_factory)

    if spec is not None or template is not None:
        run_point = run_rate_delay_point
        built_label, points = build_rate_delay_points(
            cca_factory, link_rates_mbps, rm, duration=duration,
            warmup_fraction=warmup_fraction, mss=mss, seed=seed,
            template=template)
        if not label:
            label = built_label
    else:
        # Legacy path: a live factory closure. Works, but only serially.
        if not isinstance(backend, SerialBackend):
            raise ConfigurationError(
                "parallel sweeps need a declarative CCA (a registry "
                "name or CCASpec), not a live factory callable — "
                "closures cannot cross process boundaries")
        if store is not None:
            raise ConfigurationError(
                "result caching needs a declarative CCA (a registry "
                "name or CCASpec), not a live factory callable — a "
                "closure's identity cannot be part of a stable cache "
                "key")

        def run_point(params: Dict[str, object],
                      point_budget: RunBudget) -> Dict[str, float]:
            rate = units.mbps(float(params["rate_mbps"]))
            run_time = duration
            if run_time is None:
                run_time = default_run_time(rate, rm, mss)
            result = run_scenario_full(
                LinkConfig(rate=rate),
                [FlowConfig(cca_factory=cca_factory, rm=rm, mss=mss)],
                duration=run_time, warmup=run_time * warmup_fraction,
                max_events=point_budget.max_events,
                wall_clock_budget=point_budget.wall_clock)
            stats = result.stats[0]
            return {"link_rate": rate, "d_min": stats.min_rtt,
                    "d_max": stats.max_rtt,
                    "throughput": stats.throughput}

        points = [(f"{float(rate_mbps):g}mbps",
                   {"rate_mbps": float(rate_mbps)})
                  for rate_mbps in link_rates_mbps]

    sweep = ResilientSweep(run_point, budget=budget,
                           checkpoint_path=checkpoint_path,
                           retry_failures_on_resume=retry_failures,
                           backend=backend, store=store, refresh=refresh,
                           crash_dir=crash_dir,
                           max_failures=max_failures)
    outcome = sweep.run(points)
    return assemble_rate_delay_curve(label, rm, points, outcome,
                                     cached=store is not None)


def log_rate_grid(lo_mbps: float = 0.1, hi_mbps: float = 100.0,
                  points: int = 7) -> List[float]:
    """A log-spaced link-rate grid like Figure 3's x axis."""
    if lo_mbps <= 0 or hi_mbps <= lo_mbps or points < 2:
        raise ValueError("invalid grid parameters")
    step = (hi_mbps / lo_mbps) ** (1.0 / (points - 1))
    grid = [min(lo_mbps * step ** i, hi_mbps) for i in range(points)]
    # Floating-point step accumulation can land the last point a hair
    # off hi_mbps on either side; pin it exactly.
    grid[-1] = hi_mbps
    return grid
