"""Trace export: turn recorders into TSV files / numpy arrays.

Lets downstream users plot runs with their own tooling:

    result = run_scenario_full(...)
    export_run_tsv(result, "out/")        # one TSV per flow + queue
    arrays = flow_arrays(result.scenario.flows[0].recorder)
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..sim.recorder import FlowRecorder, QueueRecorder
from ..sim.runner import RunResult


def flow_arrays(recorder: FlowRecorder) -> Dict[str, np.ndarray]:
    """Recorder time series as numpy arrays.

    Keys: ``rtt_times``, ``rtt_values``, ``sample_times``,
    ``cwnd_values``, ``pacing_values`` (NaN where unpaced),
    ``delivered_values``, ``rate_values`` (derivative of delivered).
    """
    sample_times = np.asarray(recorder.sample_times, dtype=float)
    delivered = np.asarray(recorder.delivered_values, dtype=float)
    pacing = np.array([float("nan") if p is None else p
                       for p in recorder.pacing_values], dtype=float)
    if len(sample_times) > 1:
        rates = np.gradient(delivered, sample_times)
    else:
        rates = np.zeros_like(delivered)
    return {
        "rtt_times": np.asarray(recorder.rtt_times, dtype=float),
        "rtt_values": np.asarray(recorder.rtt_values, dtype=float),
        "sample_times": sample_times,
        "cwnd_values": np.asarray(recorder.cwnd_values, dtype=float),
        "pacing_values": pacing,
        "delivered_values": delivered,
        "rate_values": rates,
    }


def queue_arrays(recorder: QueueRecorder) -> Dict[str, np.ndarray]:
    """Queue occupancy time series as numpy arrays."""
    return {
        "sample_times": np.asarray(recorder.sample_times, dtype=float),
        "backlog_bytes": np.asarray(recorder.backlog_values,
                                    dtype=float),
    }


def write_tsv(path: str, columns: Dict[str, np.ndarray]) -> None:
    """Write equal-length columns as a tab-separated file with header."""
    names = list(columns)
    lengths = {len(columns[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError(f"column lengths differ: "
                         f"{ {n: len(columns[n]) for n in names} }")
    with open(path, "w") as handle:
        handle.write("\t".join(names) + "\n")
        for row in zip(*(columns[name] for name in names)):
            handle.write("\t".join(f"{value:.9g}" for value in row)
                         + "\n")


def export_run_tsv(result: RunResult, directory: str,
                   prefix: Optional[str] = None) -> Dict[str, str]:
    """Write one TSV per flow (RTT + cwnd series) plus the queue series.

    Returns a mapping of logical name -> written path.
    """
    os.makedirs(directory, exist_ok=True)
    prefix = prefix or "run"
    written: Dict[str, str] = {}
    for flow in result.scenario.flows:
        arrays = flow_arrays(flow.recorder)
        label = flow.config.label or f"flow{flow.flow_id}"
        safe = label.replace("/", "_").replace(" ", "_")
        rtt_path = os.path.join(directory, f"{prefix}-{safe}-rtt.tsv")
        write_tsv(rtt_path, {"time": arrays["rtt_times"],
                             "rtt": arrays["rtt_values"]})
        written[f"{label}:rtt"] = rtt_path
        cwnd_path = os.path.join(directory, f"{prefix}-{safe}-cwnd.tsv")
        write_tsv(cwnd_path, {"time": arrays["sample_times"],
                              "cwnd_bytes": arrays["cwnd_values"],
                              "delivered_bytes":
                                  arrays["delivered_values"],
                              "rate_bytes_per_s": arrays["rate_values"]})
        written[f"{label}:cwnd"] = cwnd_path
    queue_path = os.path.join(directory, f"{prefix}-queue.tsv")
    write_tsv(queue_path,
              queue_arrays(result.scenario.queue_recorder))
    written["queue"] = queue_path
    return written
