"""Analysis utilities: metrics, sweeps, harness, backends, scenarios."""

from .backends import (PointOutcome, ProcessPoolBackend, SerialBackend,
                       execute_point, make_backend)
from .competition import (CompetitionMatrix, competition_matrix,
                          run_competition_point)
from .diagnostics import (load_bundle, replay_bundle, write_crash_bundle)
from .harness import (ResilientSweep, RunBudget, RunFailure, SweepOutcome,
                      describe_failures, run_with_retry)
from .metrics import (loss_rate, mean_rtt_ms, queueing_delay_ms,
                      summarize_run, throughputs_mbps, utilization)
from .report import (comparison_line, describe_run, flow_table,
                     format_table, rate_delay_ascii)
from .sweep import (RateDelayCurve, RateDelayPoint, log_rate_grid,
                    sweep_rate_delay)
from .traces import export_run_tsv, flow_arrays, queue_arrays, write_tsv

__all__ = [
    "CompetitionMatrix", "PointOutcome", "ProcessPoolBackend",
    "RateDelayCurve", "RateDelayPoint", "ResilientSweep", "RunBudget",
    "RunFailure", "SerialBackend", "SweepOutcome", "comparison_line",
    "competition_matrix", "run_competition_point",
    "describe_failures", "describe_run", "execute_point", "flow_table",
    "format_table", "load_bundle", "log_rate_grid", "loss_rate",
    "make_backend", "replay_bundle", "write_crash_bundle",
    "mean_rtt_ms", "queueing_delay_ms", "rate_delay_ascii",
    "export_run_tsv", "flow_arrays", "queue_arrays", "run_with_retry",
    "summarize_run", "sweep_rate_delay", "throughputs_mbps",
    "utilization", "write_tsv",
]
