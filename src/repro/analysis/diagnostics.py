"""Crash bundles: reproducible failure capture for grid points.

When a grid point dies inside :func:`repro.analysis.backends.
execute_point` — a :class:`~repro.errors.SimulationError`, an
:class:`~repro.errors.InvariantViolation` from the sentinel, a budget
blowout, or an unexpected internal error — the bare ``RunFailure``
record says *that* it failed but not enough to debug *why*. A crash
bundle captures everything needed to re-run the exact point:

* the full params dict (which for spec-driven sweeps embeds the
  ScenarioSpec JSON, and therefore the root seed),
* the worker task name (``module:qualname``), so the same module-level
  ``run_point`` can be resolved again,
* the exception type, message, and full traceback,
* engine state off the exception (``sim_time``, which budget fired,
  measured value) and the sentinel's structured ``details`` (violated
  invariant + a tail of the recorder traces),
* the :class:`~repro.analysis.harness.RunBudget` in force.

Bundles are single JSON files written atomically (tempfile +
``os.replace``) under a crash directory (``crashes/`` by convention;
the CLI's ``--crash-dir``). The file name is content-derived from
``(key, reason)``, so a point that fails the same way on every retry
overwrites one bundle instead of accumulating copies.

``repro replay <bundle>`` (see :mod:`repro.cli`) re-runs the point
through the same :func:`execute_point` path — same params, same seed,
same budget — which makes every captured failure a one-command repro.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import re
import sys
import tempfile
import time
from typing import Any, Dict, Optional

from .. import __version__
from ..errors import ConfigurationError
from .harness import RunBudget, _first_line, format_traceback

BUNDLE_VERSION = 1

#: Exception attributes copied into the bundle's ``engine`` section
#: when present (BudgetExceededError and InvariantViolation carry
#: these; other exceptions simply yield an empty section).
_ENGINE_ATTRS = ("kind", "limit", "value", "sim_time")


def _slug(text: str, limit: int = 48) -> str:
    slug = re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_")
    return slug[:limit] or "point"


def bundle_filename(key: str, reason: str) -> str:
    """Deterministic bundle name: readable key + short content hash."""
    digest = hashlib.sha256(
        f"{key}\x00{reason}".encode("utf-8")).hexdigest()[:8]
    return f"crash-{_slug(key)}-{digest}.json"


def find_seed(params: Any) -> Optional[int]:
    """Best-effort root-seed extraction from a params payload.

    Spec-driven sweeps embed the scenario as JSON under ``"spec"`` or
    ``"scenario"`` (with its root ``seed``); plain dicts may carry
    ``seed`` at top level. Returns None when no seed is discoverable.
    """
    if not isinstance(params, dict):
        return None
    for key in ("seed", "root_seed"):
        value = params.get(key)
        if isinstance(value, int):
            return value
    for key in ("spec", "scenario"):
        nested = params.get(key)
        if isinstance(nested, dict):
            seed = find_seed(nested)
            if seed is not None:
                return seed
    return None


def write_crash_bundle(crash_dir: str, *, key: str,
                       params: Dict[str, Any], exc: BaseException,
                       task: str = "", attempts: int = 1,
                       elapsed: float = 0.0,
                       budget: Optional[RunBudget] = None,
                       backend: str = "serial") -> Optional[str]:
    """Persist one failure as a reproducible JSON bundle.

    Returns the bundle path, or None when capture itself failed —
    diagnostics must never turn a recorded failure into a second
    crash, so any OSError/TypeError during capture is swallowed.
    """
    try:
        engine = {}
        for attr in _ENGINE_ATTRS:
            value = getattr(exc, attr, None)
            if value is not None:
                engine[attr] = value
        payload = {
            "version": BUNDLE_VERSION,
            "key": key,
            "task": task,
            "params": params,
            "seed": find_seed(params),
            "reason": type(exc).__name__,
            "message": _first_line(exc),
            "traceback": format_traceback(exc),
            "engine": engine,
            "details": getattr(exc, "details", None),
            "budget": None if budget is None else {
                "max_events": budget.max_events,
                "wall_clock": budget.wall_clock,
                "retries": budget.retries,
                "backoff": budget.backoff,
            },
            "backend": backend,
            "attempts": attempts,
            "elapsed": elapsed,
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "repro_version": __version__,
        }
        os.makedirs(crash_dir, exist_ok=True)
        path = os.path.join(crash_dir, bundle_filename(
            key, type(exc).__name__))
        # Atomic replace: a kill mid-write can't leave a torn bundle.
        fd, tmp_path = tempfile.mkstemp(dir=crash_dir, prefix=".crash-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True,
                          default=repr)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path
    except Exception:
        return None


def load_bundle(path: str) -> Dict[str, Any]:
    """Read and validate a crash bundle."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "params" not in data:
        raise ConfigurationError(
            f"{path} is not a crash bundle (no params payload)")
    version = data.get("version")
    if version != BUNDLE_VERSION:
        raise ConfigurationError(
            f"unsupported crash bundle version {version!r} in {path} "
            f"(this build reads version {BUNDLE_VERSION})")
    return data


def resolve_task(task: str):
    """Import the ``module:qualname`` worker recorded in a bundle."""
    if not task or ":" not in task:
        raise ConfigurationError(
            f"bundle has no resolvable task name: {task!r}")
    module_name, qualname = task.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import bundle task module {module_name!r}: {exc}")
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise ConfigurationError(
                f"bundle task {task!r} no longer exists "
                f"(renamed or removed worker function?)")
    return obj


def budget_from_bundle(data: Dict[str, Any],
                       scale: float = 1.0) -> RunBudget:
    """Reconstruct the bundle's RunBudget, optionally scaled up."""
    recorded = data.get("budget") or {}
    max_events = recorded.get("max_events")
    wall_clock = recorded.get("wall_clock")
    return RunBudget(
        max_events=None if max_events is None
        else max(1, int(max_events * scale)),
        wall_clock=None if wall_clock is None
        else wall_clock * scale,
        retries=recorded.get("retries", 0),
        backoff=recorded.get("backoff", 1.0) or 1.0)


def replay_bundle(path: str, invariants: Optional[str] = None,
                  budget_scale: float = 1.0):
    """Re-run the exact point captured in a bundle.

    Returns the :class:`~repro.analysis.backends.PointOutcome` of the
    re-run: ``outcome.failure`` repeats the original failure when the
    point is deterministic; a ``None`` failure means the point now
    passes (fixed code, or a strict-mode-only capture replayed in warn
    mode). ``invariants`` forces the sentinel mode for the replay
    (``strict`` turns warn-mode captures into hard raises);
    ``budget_scale`` multiplies the recorded budgets to distinguish a
    genuinely divergent point from one that merely ran out of headroom.
    """
    from ..sim.invariants import override_mode
    from .backends import execute_point
    data = load_bundle(path)
    run_point = resolve_task(data.get("task", ""))
    budget = budget_from_bundle(data, scale=budget_scale)
    key = data.get("key", "replay")
    params = data["params"]
    if invariants is not None:
        with override_mode(invariants):
            return execute_point(run_point, key, params, budget,
                                 backend_name="replay")
    return execute_point(run_point, key, params, budget,
                         backend_name="replay")
