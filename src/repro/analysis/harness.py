"""Resilient experiment harness: watchdogs, retries, checkpointed sweeps.

Every sweep in this repo used to run unsupervised: one divergent CCA run
(livelocked event loop, runaway queue) aborted an entire grid with no
partial results. This module supplies the missing robustness layer:

* :class:`RunBudget` — per-run event-count and wall-clock budgets,
  enforced by the engine watchdog (:class:`~repro.errors.
  BudgetExceededError`).
* :func:`run_with_retry` — bounded retries with parameter back-off for
  flaky or budget-limited runs.
* :class:`ResilientSweep` — grid execution with graceful degradation
  (a failed point becomes a structured :class:`RunFailure` instead of
  aborting the sweep) and JSON checkpointing so interrupted sweeps
  resume from the last completed point.

The harness is deliberately generic: a "grid point" is any
JSON-serializable key plus a run callable returning a
JSON-serializable result, so packet sweeps, fluid-model sweeps, and
benchmark panels all fit.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from ..errors import ReproError, SweepAbortedError


@dataclass
class RunBudget:
    """Watchdog limits for one experiment run.

    Args:
        max_events: engine events allowed per run (None = unlimited).
        wall_clock: real seconds allowed per run (None = unlimited).
        retries: additional attempts after the first failure.
        backoff: multiplier applied to both budgets on each retry, so a
            run that merely needed more headroom gets it (a genuinely
            livelocked run still fails, just a bit later).
    """

    max_events: Optional[int] = 20_000_000
    wall_clock: Optional[float] = 60.0
    retries: int = 1
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError(f"max_events must be > 0, got {self.max_events}")
        if self.wall_clock is not None and self.wall_clock <= 0:
            raise ValueError(f"wall_clock must be > 0, got {self.wall_clock}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def scaled(self, attempt: int) -> "RunBudget":
        """The budget for the given 0-based attempt (back-off applied)."""
        factor = self.backoff ** attempt
        return RunBudget(
            max_events=None if self.max_events is None
            else int(self.max_events * factor),
            wall_clock=None if self.wall_clock is None
            else self.wall_clock * factor,
            retries=self.retries, backoff=self.backoff)


@dataclass
class RunFailure:
    """A machine-readable record of one failed grid point.

    ``kind`` classifies how the point died:

    * ``"error"`` — the run raised a recoverable exception (budget
      blowout, simulation error, invariant violation); ``reason``
      holds the exception class name.
    * ``"internal"`` — an unexpected non-recoverable exception (a
      programming error) was wrapped instead of aborting the sweep.
    * ``"worker_lost"`` — the pool worker executing the point died
      (killed, segfaulted, ``os._exit``) and the point was quarantined
      after repeated respawns.
    * ``"timeout"`` — the point exceeded its parent-side wall timeout
      and its worker was terminated.

    ``bundle`` is the path of the crash bundle captured for this
    failure (None when no crash directory was configured or the
    failure happened outside the worker body).
    """

    key: str
    reason: str                  # exception class name, e.g. "BudgetExceededError"
    message: str
    attempts: int
    elapsed: float               # wall-clock seconds spent across attempts
    params: Dict[str, Any] = field(default_factory=dict)
    kind: str = "error"
    bundle: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {"key": self.key, "reason": self.reason,
                "message": self.message, "attempts": self.attempts,
                "elapsed": self.elapsed, "params": self.params,
                "kind": self.kind, "bundle": self.bundle}

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "RunFailure":
        return RunFailure(key=data["key"], reason=data["reason"],
                          message=data["message"],
                          attempts=data["attempts"],
                          elapsed=data["elapsed"],
                          params=data.get("params", {}),
                          kind=data.get("kind", "error"),
                          bundle=data.get("bundle"))


#: Exceptions a run may raise that the harness degrades gracefully on.
#: Anything else (e.g. a TypeError from a bad experiment script) is a
#: programming error and propagates immediately.
RECOVERABLE = (ReproError, ArithmeticError, MemoryError, RecursionError)


def run_with_retry(fn: Callable[..., Any],
                   budget: Optional[RunBudget] = None,
                   on_retry: Optional[Callable[[int, BaseException],
                                               None]] = None) -> Any:
    """Call ``fn(budget=...)`` with bounded retries and budget back-off.

    ``fn`` receives the attempt's (scaled) :class:`RunBudget` as a
    keyword argument and should pass its limits into the run (e.g.
    ``run_scenario_full(..., max_events=budget.max_events,
    wall_clock_budget=budget.wall_clock)``). On a recoverable failure
    the call is retried up to ``budget.retries`` times, with both
    budgets multiplied by ``budget.backoff`` each attempt; the last
    failure propagates.

    ``on_retry(attempt, exc)`` is invoked before each retry — use it to
    back off *parameters* too (shorter duration, coarser sampling).
    """
    budget = budget or RunBudget()
    last_exc: Optional[BaseException] = None
    for attempt in range(budget.retries + 1):
        try:
            return fn(budget=budget.scaled(attempt))
        except RECOVERABLE as exc:
            last_exc = exc
            if attempt < budget.retries and on_retry is not None:
                on_retry(attempt, exc)
    assert last_exc is not None
    raise last_exc


@dataclass
class SweepOutcome:
    """Everything a resilient sweep produced.

    ``completed`` maps point keys to run results (in grid order);
    ``failures`` holds one :class:`RunFailure` per divergent point;
    ``resumed`` counts points skipped because a checkpoint already had
    them. With a result store attached, ``hits``/``misses`` count the
    points served from cache versus actually simulated — a fully warm
    sweep shows ``misses == 0``.
    """

    completed: Dict[str, Any]
    failures: List[RunFailure]
    resumed: int = 0
    hits: int = 0
    misses: int = 0
    #: Points that simulated fine but could not be persisted to the
    #: store (ENOSPC and friends) — a subset of ``misses``; the sweep
    #: degraded to no-cache mode for them instead of failing.
    degraded: int = 0
    #: True when a ``stop_check`` ended the sweep before every point
    #: ran (the sweep-service's cooperative job cancellation). The
    #: checkpoint holds everything that finished.
    stopped: bool = False

    @property
    def failed_keys(self) -> List[str]:
        return [f.key for f in self.failures]

    def result_for(self, key: str) -> Optional[Any]:
        return self.completed.get(key)


class ResilientSweep:
    """Run a grid of experiments with watchdogs, retries, checkpoints.

    Args:
        run_point: ``run_point(params, budget)`` executes one grid point
            and returns a JSON-serializable result. It should forward
            ``budget.max_events``/``budget.wall_clock`` into the
            simulator so the watchdog can fire. With a parallel backend
            it must be a *module-level* function and ``params`` must be
            picklable (see :mod:`repro.analysis.backends`).
        budget: per-point :class:`RunBudget` (default: a generous one).
        checkpoint_path: JSON file for incremental progress. Written
            atomically after *every* point; on the next invocation,
            completed and failed points found there are skipped, so an
            interrupted sweep resumes where it stopped. None disables
            checkpointing.
        retry_failures_on_resume: when True, points recorded as
            failures in the checkpoint are attempted again on resume
            (completed points are never re-run).
        backend: an :class:`~repro.analysis.backends.SerialBackend`
            (default) or
            :class:`~repro.analysis.backends.ProcessPoolBackend`
            deciding where points execute. Checkpoint/failure semantics
            are backend-independent.
        crash_dir: directory for crash bundles (see
            :mod:`repro.analysis.diagnostics`). Every failed point
            captures a reproducible bundle there and the
            :class:`RunFailure` record carries its path; None (default)
            disables capture.
        store: a :class:`~repro.store.ResultStore` for content-addressed
            result caching. Every point is looked up before it is
            simulated and stored after (successes only), so re-running
            a sweep with a warm store executes zero simulations. With a
            store, the checkpoint stops persisting results of its own:
            it records each completed point's *cache key* and becomes a
            view over the store (results from a pre-store checkpoint
            are migrated in on first resume). A checkpoint entry whose
            store object was garbage-collected simply re-runs.
        refresh: recompute every point even when cached, overwriting
            store entries (the CLI's ``--force``).
        max_failures: fail-fast threshold — the number of failed points
            tolerated before the sweep aborts with a
            :class:`~repro.errors.SweepAbortedError` (``0`` aborts on
            the first failure; ``None``, the default, never aborts).
            A sweep that is mostly quarantining points is usually a
            broken setup, not a broken scenario; better to stop with a
            clear error than grind to the end. The checkpoint is
            flushed before the raise, and failures loaded from a
            resumed checkpoint count toward the threshold, so a
            re-invocation without fixing anything aborts immediately
            instead of burning the grid again.
        stop_check: a zero-argument callable polled after every
            finished point (post checkpoint flush). Returning True ends
            the sweep cooperatively: in-flight backend work is torn
            down, the outcome carries ``stopped=True``, and everything
            completed so far survives in the checkpoint — the
            sweep-service uses this for job cancellation.

    Example::

        sweep = ResilientSweep(run_point, checkpoint_path="sweep.json")
        outcome = sweep.run([("2mbps", {"rate": 2.0}),
                             ("50mbps", {"rate": 50.0})])
        outcome.completed   # {"2mbps": {...}, "50mbps": {...}}
        outcome.failures    # [RunFailure(...)] for divergent points
    """

    #: Version 1 checkpoints inline every result; version 2 (written
    #: when a result store is attached) records cache keys instead and
    #: resolves them through the store on load.
    CHECKPOINT_VERSION = 1
    CHECKPOINT_STORE_VERSION = 2

    def __init__(self, run_point: Callable[[Dict[str, Any], RunBudget],
                                           Any],
                 budget: Optional[RunBudget] = None,
                 checkpoint_path: Optional[str] = None,
                 retry_failures_on_resume: bool = False,
                 progress: Optional[Callable[[str, str], None]] = None,
                 backend: Optional[object] = None,
                 store: Optional[object] = None,
                 refresh: bool = False,
                 crash_dir: Optional[str] = None,
                 max_failures: Optional[int] = None,
                 stop_check: Optional[Callable[[], bool]] = None) -> None:
        if max_failures is not None and max_failures < 0:
            raise ValueError(
                f"max_failures must be >= 0, got {max_failures}")
        self.run_point = run_point
        self.budget = budget or RunBudget()
        self.checkpoint_path = checkpoint_path
        self.retry_failures_on_resume = retry_failures_on_resume
        self.max_failures = max_failures
        self.progress = progress
        if backend is None:
            # Imported here: backends.py imports this module's budget
            # and failure types.
            from .backends import SerialBackend
            backend = SerialBackend()
        self.backend = backend
        self.store = store
        self.refresh = refresh
        self.crash_dir = crash_dir
        self.stop_check = stop_check
        self._interrupted: Optional[int] = None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def load_checkpoint(self) -> Tuple[Dict[str, Any], List[RunFailure]]:
        """Read prior progress; tolerates a missing or corrupt file."""
        completed, _refs, failures = self._load_state()
        return completed, failures

    def _load_state(self) -> Tuple[Dict[str, Any], Dict[str, str],
                                   List[RunFailure]]:
        """Prior progress as ``(results, cache-key refs, failures)``.

        Version 1 files carry results inline (refs stay empty).
        Version 2 files carry cache keys; each is resolved through the
        attached store, and an unresolvable key (entry gc'd, store
        moved, no store attached) silently drops the point so it simply
        re-runs — the checkpoint is a view, the store is the truth.
        """
        if self.checkpoint_path is None:
            return {}, {}, []
        try:
            with open(self.checkpoint_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}, {}, []
        version = data.get("version")
        completed: Dict[str, Any] = {}
        refs: Dict[str, str] = {}
        if version == self.CHECKPOINT_VERSION:
            completed = dict(data.get("completed", {}))
        elif version == self.CHECKPOINT_STORE_VERSION:
            completed = dict(data.get("inline", {}))
            if self.store is not None:
                for key, cache_key in data.get("completed", {}).items():
                    found, result = self.store.fetch(cache_key)
                    if found:
                        completed[key] = result
                        refs[key] = cache_key
        else:
            return {}, {}, []
        failures = [RunFailure.from_json(f)
                    for f in data.get("failures", [])]
        return completed, refs, failures

    def _write_checkpoint(self, completed: Dict[str, Any],
                          failures: List[RunFailure],
                          refs: Optional[Dict[str, str]] = None) -> None:
        if self.checkpoint_path is None:
            return
        if self.store is not None:
            refs = refs or {}
            payload = {
                "version": self.CHECKPOINT_STORE_VERSION,
                "store": getattr(self.store, "root", ""),
                # The store holds the results; the checkpoint only
                # remembers which cache keys belong to this grid.
                "completed": {key: refs[key] for key in completed
                              if key in refs},
                # Results that never obtained a cache key (carried over
                # from a pre-store checkpoint for points outside the
                # current grid) are kept inline so nothing is lost.
                "inline": {key: value for key, value in completed.items()
                           if key not in refs},
                "failures": [f.to_json() for f in failures],
            }
        else:
            payload = {
                "version": self.CHECKPOINT_VERSION,
                "completed": completed,
                "failures": [f.to_json() for f in failures],
            }
        # Atomic replace so a kill mid-write can't corrupt progress.
        directory = os.path.dirname(os.path.abspath(self.checkpoint_path))
        fd, tmp_path = tempfile.mkstemp(dir=directory,
                                        prefix=".checkpoint-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp_path, self.checkpoint_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @contextmanager
    def _trap_signals(self):
        """Convert SIGINT/SIGTERM into a cooperative stop.

        The handler only sets a flag; the run loop notices it after the
        in-flight point lands and its checkpoint is flushed, then
        re-raises, so an interrupted sweep always resumes cleanly from
        a consistent checkpoint. Outside the main thread (or where
        signals are unavailable) this is a transparent no-op.
        """
        self._interrupted = None
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = {}

        def handler(signum, frame):
            self._interrupted = signum

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic env
                pass
        try:
            yield
        finally:
            for sig, old in previous.items():
                try:
                    signal.signal(sig, old)
                except (ValueError, OSError):  # pragma: no cover
                    pass

    def run(self, points: Sequence[Tuple[str, Dict[str, Any]]]
            ) -> SweepOutcome:
        """Execute every grid point, degrading gracefully on failures.

        Points already present in the checkpoint are skipped; the rest
        are handed to the execution backend (serially by default, or a
        process pool). The checkpoint is rewritten after every finished
        point regardless of backend, so an interrupted parallel sweep
        resumes exactly like a serial one. SIGINT/SIGTERM are trapped
        for the duration of the run: the in-flight point finishes, the
        checkpoint is flushed, and only then does the signal re-raise
        (KeyboardInterrupt / SystemExit).
        """
        keys = [key for key, _ in points]
        if len(set(keys)) != len(keys):
            raise ValueError("grid point keys must be unique")
        completed, refs, failures = self._load_state()
        if self.retry_failures_on_resume:
            failures = []
        if self.store is not None:
            self._migrate_inline_results(completed, refs, dict(points))
        failed_keys = {f.key for f in failures}
        pending = [(key, params) for key, params in points
                   if key not in completed and key not in failed_keys]
        resumed = len(points) - len(pending)
        hits = misses = degraded = 0
        stopped = False
        self._check_failure_threshold(failures)
        with self._trap_signals():
            for outcome in self.backend.execute(
                    self.run_point, pending, self.budget,
                    on_start=lambda key: self._note(key, "run"),
                    store=self.store, refresh=self.refresh,
                    crash_dir=self.crash_dir):
                if outcome.failure is not None:
                    failures.append(outcome.failure)
                    failed_keys.add(outcome.key)
                    self._note(outcome.key,
                               f"failed: {outcome.failure.reason}")
                else:
                    completed[outcome.key] = outcome.result
                    if outcome.cache_key is not None:
                        refs[outcome.key] = outcome.cache_key
                    if outcome.cached:
                        hits += 1
                        self._note(outcome.key, "cached")
                    elif outcome.degraded:
                        misses += 1
                        degraded += 1
                        self._note(outcome.key, "degraded")
                    else:
                        misses += 1
                        self._note(outcome.key, "ok")
                self._write_checkpoint(completed, failures, refs)
                # Fail-fast after the flush: everything that finished
                # survives for a resume with a fixed setup. Raising
                # here closes the backend generator, which tears down
                # any pool workers.
                self._check_failure_threshold(failures)
                if self.stop_check is not None and self.stop_check():
                    stopped = True
                if stopped or self._interrupted is not None:
                    # Exiting the loop closes the backend generator,
                    # which tears down any pool workers.
                    break
        if self._interrupted is not None:
            signum, self._interrupted = self._interrupted, None
            if signum == signal.SIGTERM:
                raise SystemExit(128 + signum)
            raise KeyboardInterrupt
        return SweepOutcome(completed=completed, failures=failures,
                            resumed=resumed, hits=hits, misses=misses,
                            degraded=degraded, stopped=stopped)

    def _check_failure_threshold(self,
                                 failures: List[RunFailure]) -> None:
        if self.max_failures is not None \
                and len(failures) > self.max_failures:
            raise SweepAbortedError(
                f"sweep aborted: {len(failures)} point(s) failed, "
                f"exceeding max_failures={self.max_failures} "
                f"(last: {failures[-1].key}: {failures[-1].reason}: "
                f"{failures[-1].message})",
                failures=list(failures))

    def _migrate_inline_results(self, completed: Dict[str, Any],
                                refs: Dict[str, str],
                                params_by_key: Dict[str, Any]) -> None:
        """Unify pre-store checkpoints with the store.

        A version-1 checkpoint carries results inline. When a store is
        attached, each inline result whose point is still on the grid
        is put under its content address, so from here on the
        checkpoint is purely a view over cached keys.
        """
        from ..store import point_cache_key, task_name
        for key, result in completed.items():
            if key in refs or key not in params_by_key:
                continue
            cache_key = point_cache_key(self.run_point,
                                        params_by_key[key],
                                        fingerprint=self.store.fingerprint)
            if not self.store.contains(cache_key):
                self.store.put(cache_key, result, meta={"point": key},
                               task=task_name(self.run_point))
            refs[key] = cache_key

    def _note(self, key: str, status: str) -> None:
        if self.progress is not None:
            self.progress(key, status)


def _first_line(exc: BaseException) -> str:
    text = str(exc) or type(exc).__name__
    return text.splitlines()[0]


def describe_failures(failures: Sequence[RunFailure]) -> str:
    """A compact human-readable failure table for reports/logs."""
    if not failures:
        return "no failures"
    lines = ["key                  reason                 attempts  detail"]
    for f in failures:
        lines.append(f"{f.key:20.20s} {f.reason:22.22s} "
                     f"{f.attempts:8d}  {f.message:.60s}")
    return "\n".join(lines)


def format_traceback(exc: BaseException) -> str:
    """Full traceback text for verbose failure logging."""
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))
