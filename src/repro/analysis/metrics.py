"""Run-level metrics shared by benches and examples."""

from __future__ import annotations

import math
from typing import List, Sequence

from .. import units
from ..sim.runner import FlowStats, RunResult


def utilization(stats: Sequence[FlowStats], link_rate: float) -> float:
    """Aggregate throughput over capacity."""
    return sum(s.throughput for s in stats) / link_rate


def throughputs_mbps(stats: Sequence[FlowStats]) -> List[float]:
    return [units.to_mbps(s.throughput) for s in stats]


def mean_rtt_ms(stats: Sequence[FlowStats]) -> List[float]:
    return [s.mean_rtt * 1e3 for s in stats]


def loss_rate(stats: FlowStats, duration: float, mss: int = 1500) -> float:
    """Approximate packet loss rate over the run."""
    delivered_packets = stats.goodput * duration / mss
    total = delivered_packets + stats.losses
    if total <= 0:
        return 0.0
    return stats.losses / total


def queueing_delay_ms(stats: FlowStats, rm: float) -> float:
    """Mean queueing delay above the propagation floor, in ms."""
    if math.isnan(stats.mean_rtt):
        return math.nan
    return max(stats.mean_rtt - rm, 0.0) * 1e3


def summarize_run(result: RunResult) -> dict:
    """A dictionary digest convenient for printing or asserting on."""
    # Single pass over the per-flow stats; values match the individual
    # helpers exactly.
    rates: List[float] = []
    losses: List[int] = []
    rtts: List[float] = []
    for s in result.stats:
        rates.append(units.to_mbps(s.throughput))
        losses.append(s.losses)
        rtts.append(s.mean_rtt * 1e3)
    return {
        "throughputs_mbps": rates,
        "ratio": result.throughput_ratio(),
        "utilization": result.utilization(),
        "losses": losses,
        "mean_rtt_ms": rtts,
    }
