"""Unit helpers used throughout the library.

Internally the library uses SI base units everywhere:

* time is in **seconds** (float),
* data is in **bytes** (float, so fluid models can hold fractions),
* rates are in **bytes per second**.

The constructors below exist so that scenario descriptions can be written
in the units the paper uses (milliseconds, Mbit/s, packets) without
sprinkling magic conversion factors through the code.
"""

from __future__ import annotations

#: Default packet size used by the paper's examples (alpha = 1500 bytes).
MSS = 1500

BITS_PER_BYTE = 8


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * 1e6 / BITS_PER_BYTE


def kbps(value: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return value * 1e3 / BITS_PER_BYTE


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1e9 / BITS_PER_BYTE


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes per second to megabits per second."""
    return bytes_per_second * BITS_PER_BYTE / 1e6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3
